// Package bench pins the benchmark workloads behind the repo's
// perf-trajectory gate. The benchmark *bodies* live here so that two
// callers share one definition: `go test -bench` (via thin wrappers in
// internal/event and internal/sim) and `dvbench -bench-json`, which runs
// the same bodies through testing.Benchmark and writes a BENCH_pr*.json
// snapshot that CI compares against BENCH_baseline.json. If the wrappers
// and the JSON emitter measured different workloads, the trajectory file
// would silently stop guarding the numbers developers actually see.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"testing"

	"dvsync/internal/display"
	"dvsync/internal/event"
	"dvsync/internal/flight"
	"dvsync/internal/ipl"
	"dvsync/internal/sim"
	"dvsync/internal/simtime"
	"dvsync/internal/workload"
)

// EventEngine is the pinned scheduler benchmark: a panel ticker driving a
// three-hop event chain per tick (the shape of one frame through the
// pipeline), plus a schedule-then-cancel per tick to exercise tombstone
// handling. With the free list the loop should run at a near-constant
// handful of live allocations regardless of tick count.
func EventEngine(b *testing.B) {
	const (
		period = 8 * simtime.Millisecond
		ticks  = 1000
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := event.NewEngine()
		fired := 0
		hop3 := func(now simtime.Time) { fired++ }
		hop2 := func(now simtime.Time) {
			e.After(simtime.Millisecond, event.PriorityPipeline, hop3)
		}
		tk := event.NewTicker(e, period, event.PriorityHardware, func(now simtime.Time) {
			e.After(2*simtime.Millisecond, event.PriorityPipeline, hop2)
			// Schedule-then-cancel models a controller arming a timeout that
			// the frame's completion races and wins.
			id := e.After(6*simtime.Millisecond, event.PriorityControl, hop3)
			e.Cancel(id)
		})
		tk.Start(0)
		e.Run(simtime.Time(ticks) * simtime.Time(period))
		tk.Stop()
		if fired == 0 {
			b.Fatal("no events fired")
		}
	}
}

// simTrace is the pinned end-to-end workload: 400 interactive frames,
// seed 1234 — the unit of work every experiment replica fans out.
func simTrace() *workload.Trace {
	p := workload.Profile{
		Name: "bench", ShortMeanMs: 5, ShortSigmaMs: 2,
		LongRatio: 0.06, LongScaleMs: 20, LongAlpha: 1.8,
		Burstiness: 0.3, UIShare: 0.4, Class: workload.Interactive,
	}
	return p.Generate(400, 1234)
}

// SimRun returns the pinned end-to-end simulation benchmark body for one
// architecture. Allocation counts here are the target of the hot-path
// cuts (event free list, preallocated result and trace buffers) and of
// the no-registry telemetry guarantee; regressions show up as allocs/op
// growth against BENCH_baseline.json.
func SimRun(mode sim.Mode) func(*testing.B) {
	tr := simTrace()
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sim.Run(sim.Config{
				Mode:    mode,
				Panel:   display.Config{Name: "test", RefreshHz: 60, Width: 1080, Height: 2340},
				Buffers: 4, Trace: tr, Predictor: ipl.Kalman{},
			})
		}
	}
}

// RunnerReuse is the pinned reuse-path benchmark: one sim.Runner replays
// the pinned end-to-end D-VSync workload back to back. Two numbers gate
// it: runs/sec, the per-worker throughput the experiment harness sees
// from graph reuse, and allocs/op, the steady-state allocation count of
// a reused run — the reuse contract pins the latter at single digits
// (ISSUE: ≤ 8), so any hot-path allocation creep fails the trajectory
// gate long before it shows up as wall-clock.
func RunnerReuse(b *testing.B) {
	rn := sim.NewRunner(sim.Config{
		Mode:    sim.ModeDVSync,
		Panel:   display.Config{Name: "test", RefreshHz: 60, Width: 1080, Height: 2340},
		Buffers: 4, Trace: simTrace(), Predictor: ipl.Kalman{},
	})
	// Warm up outside the timer: the first run grows every arena and ring
	// to the workload's high-water mark; steady state is run two onward.
	rn.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rn.Run()
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "runs/sec")
	}
}

// RunnerReuseFlight is RunnerReuse with the flight recorder attached: the
// always-on observability contract says recording costs nothing at steady
// state, so this body must hold the same single-digit allocs/op and the
// same runs/sec floor as the bare reuse path. The delta between the two
// benchmarks IS the recorder's price; the gate keeps it at zero allocs.
func RunnerReuseFlight(b *testing.B) {
	rn := sim.NewRunner(sim.Config{
		Mode:    sim.ModeDVSync,
		Panel:   display.Config{Name: "test", RefreshHz: 60, Width: 1080, Height: 2340},
		Buffers: 4, Trace: simTrace(), Predictor: ipl.Kalman{},
		Recorder: flight.New(flight.Config{}),
	})
	rn.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rn.Run()
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "runs/sec")
	}
}

// Pinned names one gated benchmark. Names match the keys of
// BENCH_baseline.json and the names `go test -bench` reports.
type Pinned struct {
	Name string
	Body func(*testing.B)
}

// Benchmarks returns the gated set in a fixed order.
func Benchmarks() []Pinned {
	return []Pinned{
		{Name: "BenchmarkEventEngine", Body: EventEngine},
		{Name: "BenchmarkSimRun/VSync", Body: SimRun(sim.ModeVSync)},
		{Name: "BenchmarkSimRun/D-VSync", Body: SimRun(sim.ModeDVSync)},
		{Name: "BenchmarkRunnerReuse", Body: RunnerReuse},
		{Name: "BenchmarkRunnerReuseFlight", Body: RunnerReuseFlight},
	}
}

// Result is one benchmark's measured cost per operation.
type Result struct {
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"bytes_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	// RunsPerSec is the reuse-path throughput (higher is better); only
	// benchmarks that call ReportMetric("runs/sec") carry it.
	RunsPerSec float64 `json:"runs_per_sec,omitempty"`
}

// Run executes every pinned benchmark through testing.Benchmark (default
// 1s benchtime) and returns the measured results by name.
func Run() map[string]Result {
	out := make(map[string]Result, 3)
	for _, p := range Benchmarks() {
		r := testing.Benchmark(p.Body)
		out[p.Name] = Result{
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			RunsPerSec:  r.Extra["runs/sec"],
		}
	}
	return out
}

// File is the on-disk shape of a trajectory snapshot (BENCH_pr*.json).
type File struct {
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// WriteJSON writes a trajectory snapshot. encoding/json sorts map keys,
// so output is deterministic for a given result set.
func WriteJSON(w io.Writer, results map[string]Result, note string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(File{Note: note, Benchmarks: results})
}

// ReadBaseline parses a trajectory file. Two per-benchmark shapes are
// accepted: the flat Result shape WriteJSON emits, and the annotated
// {"before": ..., "after": ...} shape of BENCH_baseline.json, where the
// gated numbers are the "after" block.
func ReadBaseline(r io.Reader) (map[string]Result, error) {
	var raw struct {
		Benchmarks map[string]json.RawMessage `json:"benchmarks"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("bench: parse baseline: %w", err)
	}
	if len(raw.Benchmarks) == 0 {
		return nil, fmt.Errorf(`bench: baseline has no "benchmarks" entries`)
	}
	names := make([]string, 0, len(raw.Benchmarks))
	for name := range raw.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]Result, len(names))
	for _, name := range names {
		var nested struct {
			After *Result `json:"after"`
		}
		if err := json.Unmarshal(raw.Benchmarks[name], &nested); err == nil && nested.After != nil {
			out[name] = *nested.After
			continue
		}
		var flat Result
		if err := json.Unmarshal(raw.Benchmarks[name], &flat); err != nil {
			return nil, fmt.Errorf("bench: baseline entry %q: %w", name, err)
		}
		out[name] = flat
	}
	return out, nil
}

// Tolerance bounds acceptable growth of each measure as a ratio new/old.
type Tolerance struct {
	MaxNsRatio     float64
	MaxBytesRatio  float64
	MaxAllocsRatio float64
	// MinRunsRatio bounds acceptable LOSS of runs/sec (higher is better):
	// the gate fails when new/old falls below it. Zero disables the check.
	MinRunsRatio float64
}

// DefaultTolerance is the CI gate. Allocation counts are deterministic
// for a fixed workload, so they gate tightly (1.10×); bytes/op leaves
// headroom for struct growth (1.25×); wall-clock differs between CI
// hosts and the host that recorded the baseline, so ns/op is an
// order-of-magnitude tripwire (10×), not a precision gate — and so is
// runs/sec, its higher-is-better mirror (0.10×).
func DefaultTolerance() Tolerance {
	return Tolerance{MaxNsRatio: 10, MaxBytesRatio: 1.25, MaxAllocsRatio: 1.10,
		MinRunsRatio: 0.10}
}

// Compare returns one message per regression of cur against base under
// tol, sorted by benchmark name; empty means the gate passes. Every
// baseline benchmark must be present in cur. Benchmarks present only in
// cur are ignored — new benchmarks enter the gate when the baseline is
// next re-pinned.
func Compare(cur, base map[string]Result, tol Tolerance) []string {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var msgs []string
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			msgs = append(msgs, fmt.Sprintf("%s: missing from current results", name))
			continue
		}
		if lim := b.NsPerOp * tol.MaxNsRatio; c.NsPerOp > lim {
			msgs = append(msgs, fmt.Sprintf("%s: ns/op %.0f exceeds %.0f (baseline %.0f x %g)",
				name, c.NsPerOp, lim, b.NsPerOp, tol.MaxNsRatio))
		}
		if lim := float64(b.BytesPerOp) * tol.MaxBytesRatio; float64(c.BytesPerOp) > lim {
			msgs = append(msgs, fmt.Sprintf("%s: bytes/op %d exceeds %.0f (baseline %d x %g)",
				name, c.BytesPerOp, lim, b.BytesPerOp, tol.MaxBytesRatio))
		}
		if lim := float64(b.AllocsPerOp) * tol.MaxAllocsRatio; float64(c.AllocsPerOp) > lim {
			msgs = append(msgs, fmt.Sprintf("%s: allocs/op %d exceeds %.0f (baseline %d x %g)",
				name, c.AllocsPerOp, lim, b.AllocsPerOp, tol.MaxAllocsRatio))
		}
		// runs/sec is higher-is-better, gated only when the baseline has
		// it — pre-reuse baselines pass unchanged.
		if b.RunsPerSec > 0 && tol.MinRunsRatio > 0 {
			if lim := b.RunsPerSec * tol.MinRunsRatio; c.RunsPerSec < lim {
				msgs = append(msgs, fmt.Sprintf("%s: runs/sec %.1f below %.1f (baseline %.1f x %g)",
					name, c.RunsPerSec, lim, b.RunsPerSec, tol.MinRunsRatio))
			}
		}
	}
	return msgs
}
