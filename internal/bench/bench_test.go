package bench

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// TestBaselineParsesAndCoversPinnedSet: the committed BENCH_baseline.json
// must parse through the gate's own reader and name exactly the pinned
// benchmark set — a renamed benchmark would otherwise silently fall out
// of the gate.
func TestBaselineParsesAndCoversPinnedSet(t *testing.T) {
	f, err := os.Open("../../BENCH_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	base, err := ReadBaseline(f)
	if err != nil {
		t.Fatal(err)
	}
	pinned := Benchmarks()
	if len(base) != len(pinned) {
		t.Fatalf("baseline has %d benchmarks, pinned set has %d", len(base), len(pinned))
	}
	for _, p := range pinned {
		r, ok := base[p.Name]
		if !ok {
			t.Fatalf("baseline missing pinned benchmark %q", p.Name)
		}
		// Zero allocs/op is legitimate for the reuse-path benchmark —
		// that is its contract — so only negative counts are implausible.
		if r.NsPerOp <= 0 || r.AllocsPerOp < 0 {
			t.Errorf("%s: implausible baseline %+v", p.Name, r)
		}
	}
}

// TestReadBaselineFlatRoundTrip: WriteJSON output reads back unchanged,
// so a BENCH_pr*.json from one PR can serve as the next baseline.
func TestReadBaselineFlatRoundTrip(t *testing.T) {
	in := map[string]Result{
		"BenchmarkA":   {NsPerOp: 1234.5, BytesPerOp: 800, AllocsPerOp: 18},
		"BenchmarkB/x": {NsPerOp: 9, BytesPerOp: 0, AllocsPerOp: 1},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in, "round-trip"); err != nil {
		t.Fatal(err)
	}
	out, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d entries, want %d", len(out), len(in))
	}
	for name, want := range in {
		if out[name] != want {
			t.Errorf("%s: %+v, want %+v", name, out[name], want)
		}
	}
}

func TestReadBaselineRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "{}", `{"benchmarks":{}}`, `{"benchmarks":{"X":"nope"}}`} {
		if _, err := ReadBaseline(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadBaseline(%q) accepted", bad)
		}
	}
}

// TestCompare exercises every gate axis plus the missing-benchmark case.
func TestCompare(t *testing.T) {
	base := map[string]Result{
		"B": {NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 100},
	}
	tol := DefaultTolerance()
	cases := []struct {
		name string
		cur  map[string]Result
		want int
		hint string
	}{
		{"equal", map[string]Result{"B": base["B"]}, 0, ""},
		{"within", map[string]Result{"B": {NsPerOp: 9000, BytesPerOp: 1250, AllocsPerOp: 110}}, 0, ""},
		{"ns-regression", map[string]Result{"B": {NsPerOp: 10001, BytesPerOp: 1000, AllocsPerOp: 100}}, 1, "ns/op"},
		{"bytes-regression", map[string]Result{"B": {NsPerOp: 1000, BytesPerOp: 1251, AllocsPerOp: 100}}, 1, "bytes/op"},
		{"allocs-regression", map[string]Result{"B": {NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 111}}, 1, "allocs/op"},
		{"all-regress", map[string]Result{"B": {NsPerOp: 99999, BytesPerOp: 9999, AllocsPerOp: 999}}, 3, ""},
		{"missing", map[string]Result{}, 1, "missing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msgs := Compare(tc.cur, base, tol)
			if len(msgs) != tc.want {
				t.Fatalf("got %d messages %v, want %d", len(msgs), msgs, tc.want)
			}
			if tc.hint != "" && !strings.Contains(msgs[0], tc.hint) {
				t.Errorf("message %q lacks %q", msgs[0], tc.hint)
			}
		})
	}
	// Extra benchmarks in cur are not regressions.
	cur := map[string]Result{"B": base["B"], "New": {NsPerOp: 1}}
	if msgs := Compare(cur, base, tol); len(msgs) != 0 {
		t.Errorf("extra current-only benchmark flagged: %v", msgs)
	}
}

// TestRunMeasuresPinnedSet runs the real bodies once through
// testing.Benchmark (1 iteration via the benchmark's own calibration is
// too slow for -short, so gate it).
func TestRunMeasuresPinnedSet(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full benchmark bodies")
	}
	res := Run()
	for _, p := range Benchmarks() {
		r, ok := res[p.Name]
		if !ok {
			t.Fatalf("Run() missing %q", p.Name)
		}
		if r.NsPerOp <= 0 || r.AllocsPerOp < 0 {
			t.Errorf("%s: implausible result %+v", p.Name, r)
		}
	}
}
