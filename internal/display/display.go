// Package display models the smartphone screen panel: the HW-VSync
// generator, the latch/present cycle, and variable refresh rates for LTPO
// panels (§5.3).
//
// The panel is the consumer side of the rendering architecture. Before
// every physical refresh it emits a hardware VSync edge; software layers
// subscribe to these edges (directly or through offset software signals, see
// package signal). The panel itself knows nothing about buffers — the
// simulation wires an OnEdge listener that performs the latch.
package display

import (
	"fmt"

	"dvsync/internal/dist"
	"dvsync/internal/event"
	"dvsync/internal/simtime"
)

// EdgeListener receives hardware VSync edges. seq is the edge index since
// panel start; period is the nominal refresh period in force at this edge.
type EdgeListener func(now simtime.Time, seq uint64, period simtime.Duration)

// Config describes a panel.
type Config struct {
	// Name labels the device, e.g. "Mate 60 Pro".
	Name string
	// RefreshHz is the initial refresh rate.
	RefreshHz int
	// Width, Height are panel dimensions in pixels.
	Width, Height int
	// JitterStdDev perturbs each edge by a zero-mean gaussian with this
	// standard deviation, emulating oscillator noise. Zero disables jitter.
	// Real panels exhibit tens of microseconds of jitter; this is what the
	// DTV's periodic calibration (§5.1) exists to absorb.
	JitterStdDev simtime.Duration
	// JitterSeed seeds the jitter stream.
	JitterSeed int64
	// PeriodSkewPPM offsets the panel's true period from nominal in parts
	// per million, emulating oscillator inaccuracy. The DTV's period
	// calibration exists to learn this.
	PeriodSkewPPM float64
	// EdgeDelay, when set, perturbs each edge nominally scheduled at the
	// given instant by an extra offset — the fault-injection hook for
	// windowed jitter episodes (internal/fault). It may return negative
	// offsets; the panel still clamps edges to land strictly after the
	// previous one.
	EdgeDelay func(nominal simtime.Time) simtime.Duration
	// EdgeMiss, when set, is consulted as each edge fires; returning true
	// makes the panel skip the refresh entirely — no latch, no software
	// VSync fan-out — while the timing grid continues. OnMissedEdge
	// listeners observe the skip.
	EdgeMiss func(now simtime.Time, seq uint64) bool
}

// Panel is the screen model.
type Panel struct {
	cfg        Config
	engine     *event.Engine
	period     simtime.Duration // nominal period software queries
	truePeriod simtime.Duration // actual oscillator period (skewed)
	listeners  []EdgeListener
	onMiss     []EdgeListener
	onRate     []func(hz int)
	rng        *dist.RNG
	seq        uint64
	running    bool
	nextID     event.ID
	nextAt     simtime.Time // true (jitter-free) time of next edge
	lastEdge   simtime.Time
	edges      uint64
	missed     uint64

	// edgeFn is the one edge handler, bound at construction; schedule
	// reuses it so the per-edge path allocates nothing.
	edgeFn event.Handler
}

func skewed(nominal simtime.Duration, ppm float64) simtime.Duration {
	return simtime.Duration(float64(nominal) * (1 + ppm/1e6))
}

// NewPanel creates a stopped panel bound to the engine.
func NewPanel(e *event.Engine, cfg Config) *Panel {
	if cfg.RefreshHz <= 0 {
		panic(fmt.Sprintf("display: invalid refresh rate %d", cfg.RefreshHz))
	}
	if cfg.Width <= 0 || cfg.Height <= 0 {
		cfg.Width, cfg.Height = 1080, 2340
	}
	nominal := simtime.PeriodForHz(cfg.RefreshHz)
	p := &Panel{
		cfg:        cfg,
		engine:     e,
		period:     nominal,
		truePeriod: skewed(nominal, cfg.PeriodSkewPPM),
		rng:        dist.New(cfg.JitterSeed ^ 0x5ee4),
	}
	p.edgeFn = p.edge
	return p
}

// OnEdge registers a listener for hardware VSync edges. Listeners fire in
// registration order at PriorityHardware.
func (p *Panel) OnEdge(l EdgeListener) { p.listeners = append(p.listeners, l) }

// OnMissedEdge registers a listener for refreshes the panel skipped under
// an EdgeMiss fault. Regular OnEdge listeners do not fire for missed edges.
func (p *Panel) OnMissedEdge(l EdgeListener) { p.onMiss = append(p.onMiss, l) }

// Missed returns how many refreshes were skipped by edge faults.
func (p *Panel) Missed() uint64 { return p.missed }

// Start schedules the first edge at the given instant.
func (p *Panel) Start(first simtime.Time) {
	if p.running {
		panic("display: panel already running")
	}
	p.running = true
	p.nextAt = first
	p.schedule(first)
}

//dvlint:hotpath runs once per hardware VSync edge
func (p *Panel) schedule(nominal simtime.Time) {
	at := nominal
	var j simtime.Duration
	if p.cfg.JitterStdDev > 0 && nominal > 0 {
		x := simtime.Duration(float64(p.cfg.JitterStdDev) * p.rng.NormFloat64())
		// Clamp to ±3σ and never before the previous edge.
		j += simtime.Clamp(x, -3*p.cfg.JitterStdDev, 3*p.cfg.JitterStdDev)
	}
	if p.cfg.EdgeDelay != nil && nominal > 0 {
		j += p.cfg.EdgeDelay(nominal)
	}
	if j != 0 {
		at = nominal.Add(j)
		if at <= p.lastEdge {
			at = p.lastEdge + 1
		}
	}
	if at < p.engine.Now() {
		at = p.engine.Now()
	}
	p.nextID = p.engine.At(at, event.PriorityHardware, p.edgeFn)
}

// edge fires one hardware VSync edge and schedules the next. It is the
// single persistent handler behind every schedule call — the panel only
// ever has one pending edge, so no per-edge state needs capturing.
//
//dvlint:hotpath runs once per hardware VSync edge
func (p *Panel) edge(now simtime.Time) {
	if !p.running {
		return
	}
	p.lastEdge = now
	p.edges++
	seq := p.seq
	p.seq++
	p.nextAt = p.nextAt.Add(p.truePeriod)
	p.schedule(p.nextAt)
	if p.cfg.EdgeMiss != nil && p.cfg.EdgeMiss(now, seq) {
		// Skipped refresh: the grid continues but nothing latches and
		// no software signals derive from this edge.
		p.missed++
		for _, l := range p.onMiss {
			l(now, seq, p.period)
		}
		return
	}
	for _, l := range p.listeners {
		l(now, seq, p.period)
	}
}

// Reset returns the panel to its as-constructed condition: stopped, back at
// the configured nominal rate, jitter stream rewound to the start of its
// seed. Listeners registered at wiring time persist, so a reused panel fans
// out edges identically to a fresh one. The caller guarantees the pending
// edge (if any) is gone with the engine's own reset.
func (p *Panel) Reset() {
	nominal := simtime.PeriodForHz(p.cfg.RefreshHz)
	p.period = nominal
	p.truePeriod = skewed(nominal, p.cfg.PeriodSkewPPM)
	p.rng.Reseed(p.cfg.JitterSeed ^ 0x5ee4)
	p.seq = 0
	p.running = false
	p.nextID = 0
	p.nextAt = 0
	p.lastEdge = 0
	p.edges = 0
	p.missed = 0
}

// Stop cancels the pending edge.
func (p *Panel) Stop() {
	if !p.running {
		return
	}
	p.running = false
	p.engine.Cancel(p.nextID)
}

// Period returns the current refresh period.
func (p *Panel) Period() simtime.Duration { return p.period }

// RefreshHz returns the current refresh rate.
func (p *Panel) RefreshHz() int { return simtime.HzForPeriod(p.period) }

// Edges returns how many edges have fired.
func (p *Panel) Edges() uint64 { return p.edges }

// LastEdge returns the time of the most recent edge.
func (p *Panel) LastEdge() simtime.Time { return p.lastEdge }

// NextEdgeAfter returns the nominal time of the first edge strictly after t.
// It is the query the DTV uses to model the display ("the VSync period or
// offsets are always available to query", §4.4).
func (p *Panel) NextEdgeAfter(t simtime.Time) simtime.Time {
	if !p.running {
		return simtime.Never
	}
	if t < p.nextAt {
		return p.nextAt
	}
	return simtime.AlignUp(t+1, p.period, p.nextAt)
}

// SetRefreshHz switches the panel refresh rate at the next edge (LTPO).
// The pending edge keeps its old timing; edges after it use the new period.
func (p *Panel) SetRefreshHz(hz int) {
	if hz <= 0 {
		panic(fmt.Sprintf("display: invalid refresh rate %d", hz))
	}
	p.period = simtime.PeriodForHz(hz)
	p.truePeriod = skewed(p.period, p.cfg.PeriodSkewPPM)
	for _, l := range p.onRate {
		l(hz)
	}
}

// OnRateChange registers a listener for SetRefreshHz retargets (the
// telemetry layer's refresh-rate feed). Listeners fire in registration
// order, synchronously inside SetRefreshHz.
func (p *Panel) OnRateChange(l func(hz int)) { p.onRate = append(p.onRate, l) }

// Name returns the configured device name.
func (p *Panel) Name() string { return p.cfg.Name }

// PixelsPerSecond returns width × height × refresh rate — the Figure 3
// rendering-pressure metric.
func (p *Panel) PixelsPerSecond() int64 {
	return int64(p.cfg.Width) * int64(p.cfg.Height) * int64(p.RefreshHz())
}
