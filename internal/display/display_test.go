package display

import (
	"testing"

	"dvsync/internal/event"
	"dvsync/internal/simtime"
)

func TestEdgesAtNominalPeriod(t *testing.T) {
	e := event.NewEngine()
	p := NewPanel(e, Config{Name: "t", RefreshHz: 60})
	var edges []simtime.Time
	p.OnEdge(func(now simtime.Time, seq uint64, period simtime.Duration) {
		edges = append(edges, now)
		if period != simtime.PeriodForHz(60) {
			t.Errorf("period = %v", period)
		}
	})
	p.Start(0)
	e.Run(simtime.Time(simtime.FromMillis(50)))
	want := []simtime.Time{0, 16666666, 33333332}
	if len(edges) < 3 {
		t.Fatalf("edges %v", edges)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edges %v, want prefix %v", edges[:3], want)
		}
	}
}

func TestListenersFireInOrder(t *testing.T) {
	e := event.NewEngine()
	p := NewPanel(e, Config{RefreshHz: 120})
	var order []int
	p.OnEdge(func(simtime.Time, uint64, simtime.Duration) { order = append(order, 1) })
	p.OnEdge(func(simtime.Time, uint64, simtime.Duration) { order = append(order, 2) })
	p.Start(0)
	e.Run(1)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order %v", order)
	}
}

func TestStopHaltsEdges(t *testing.T) {
	e := event.NewEngine()
	p := NewPanel(e, Config{RefreshHz: 60})
	count := 0
	p.OnEdge(func(simtime.Time, uint64, simtime.Duration) {
		count++
		if count == 2 {
			p.Stop()
		}
	})
	p.Start(0)
	e.RunAll()
	if count != 2 {
		t.Errorf("edges after stop: %d", count)
	}
}

func TestJitterBoundedAndMonotonic(t *testing.T) {
	e := event.NewEngine()
	sd := simtime.FromMicros(100)
	p := NewPanel(e, Config{RefreshHz: 120, JitterStdDev: sd, JitterSeed: 3})
	var prev simtime.Time = -1
	period := simtime.PeriodForHz(120)
	n := 0
	p.OnEdge(func(now simtime.Time, seq uint64, _ simtime.Duration) {
		if now <= prev {
			t.Fatalf("edge %d not after previous: %v <= %v", seq, now, prev)
		}
		nominal := simtime.Time(int64(seq) * int64(period))
		dev := now.Sub(nominal)
		if dev < -3*sd-1 || dev > 3*sd+1 {
			t.Fatalf("edge %d deviates %v from nominal", seq, dev)
		}
		prev = now
		n++
	})
	p.Start(0)
	e.Run(simtime.Time(simtime.FromMillis(500)))
	if n < 50 {
		t.Fatalf("only %d edges", n)
	}
}

func TestPeriodSkew(t *testing.T) {
	e := event.NewEngine()
	p := NewPanel(e, Config{RefreshHz: 60, PeriodSkewPPM: 10000}) // 1 % slow
	var last simtime.Time
	var n int
	p.OnEdge(func(now simtime.Time, _ uint64, _ simtime.Duration) { last, n = now, n+1 })
	p.Start(0)
	e.Run(simtime.Time(simtime.Second))
	meanPeriod := float64(last) / float64(n-1)
	want := float64(simtime.PeriodForHz(60)) * 1.01
	if meanPeriod < want*0.999 || meanPeriod > want*1.001 {
		t.Errorf("mean period %v, want ≈%v", meanPeriod, want)
	}
	// Software still sees the nominal period.
	if p.Period() != simtime.PeriodForHz(60) {
		t.Errorf("nominal period changed: %v", p.Period())
	}
}

func TestSetRefreshHz(t *testing.T) {
	e := event.NewEngine()
	p := NewPanel(e, Config{RefreshHz: 120})
	var deltas []simtime.Duration
	var prev simtime.Time = -1
	p.OnEdge(func(now simtime.Time, seq uint64, _ simtime.Duration) {
		if prev >= 0 {
			deltas = append(deltas, now.Sub(prev))
		}
		prev = now
		if seq == 3 {
			p.SetRefreshHz(60)
		}
	})
	p.Start(0)
	e.Run(simtime.Time(simtime.FromMillis(120)))
	p120, p60 := simtime.PeriodForHz(120), simtime.PeriodForHz(60)
	if deltas[0] != p120 || deltas[2] != p120 {
		t.Errorf("early deltas %v, want %v", deltas[:3], p120)
	}
	if deltas[len(deltas)-1] != p60 {
		t.Errorf("late delta %v, want %v", deltas[len(deltas)-1], p60)
	}
	if p.RefreshHz() != 60 {
		t.Errorf("RefreshHz = %d", p.RefreshHz())
	}
}

func TestNextEdgeAfter(t *testing.T) {
	e := event.NewEngine()
	p := NewPanel(e, Config{RefreshHz: 60})
	period := simtime.PeriodForHz(60)
	p.OnEdge(func(now simtime.Time, seq uint64, _ simtime.Duration) {
		if seq == 2 {
			next := p.NextEdgeAfter(now)
			if next != now.Add(period) {
				t.Errorf("NextEdgeAfter(edge) = %v, want %v", next, now.Add(period))
			}
			mid := p.NextEdgeAfter(now.Add(period / 2))
			if mid != now.Add(period) {
				t.Errorf("NextEdgeAfter(mid) = %v, want %v", mid, now.Add(period))
			}
		}
	})
	p.Start(0)
	e.Run(simtime.Time(simtime.FromMillis(60)))
}

func TestPixelsPerSecond(t *testing.T) {
	e := event.NewEngine()
	p := NewPanel(e, Config{Name: "Mate 60 Pro", RefreshHz: 120, Width: 1260, Height: 2720})
	want := int64(1260) * 2720 * 120
	if p.PixelsPerSecond() != want {
		t.Errorf("PixelsPerSecond = %d, want %d", p.PixelsPerSecond(), want)
	}
	if p.Name() != "Mate 60 Pro" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestNextEdgeAfterStopped(t *testing.T) {
	e := event.NewEngine()
	p := NewPanel(e, Config{RefreshHz: 60})
	if got := p.NextEdgeAfter(0); got != simtime.Never {
		t.Errorf("stopped panel NextEdgeAfter = %v, want Never", got)
	}
}

func TestStopIdempotent(t *testing.T) {
	e := event.NewEngine()
	p := NewPanel(e, Config{RefreshHz: 60})
	p.Start(0)
	p.Stop()
	p.Stop() // second stop is a no-op
	e.RunAll()
	if p.Edges() != 0 {
		t.Errorf("edges fired after stop: %d", p.Edges())
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	e := event.NewEngine()
	for name, fn := range map[string]func(){
		"zero rate":    func() { NewPanel(e, Config{RefreshHz: 0}) },
		"double start": func() { p := NewPanel(e, Config{RefreshHz: 60}); p.Start(0); p.Start(1) },
		"bad set rate": func() { p := NewPanel(e, Config{RefreshHz: 60}); p.SetRefreshHz(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
