package display

import (
	"fmt"

	"dvsync/internal/event"
	"dvsync/internal/simtime"
)

// State is the panel's serialisable checkpoint state. The pending edge is
// captured with its engine identity (its actual, jittered fire time can
// differ from the jitter-free nextAt grid), and the jitter stream's position
// is the draw count — restore recreates the stream from the configured seed
// and fast-forwards.
type State struct {
	Period   simtime.Duration      `json:"period"`
	Seq      uint64                `json:"seq"`
	Edges    uint64                `json:"edges"`
	Missed   uint64                `json:"missed"`
	Running  bool                  `json:"running"`
	NextAt   simtime.Time          `json:"next_at"`
	LastEdge simtime.Time          `json:"last_edge"`
	RNGDraws uint64                `json:"rng_draws,omitempty"`
	Pending  *event.ScheduledEvent `json:"pending,omitempty"`
}

// State captures the panel for a checkpoint.
func (p *Panel) State() (State, error) {
	st := State{
		Period:   p.period,
		Seq:      p.seq,
		Edges:    p.edges,
		Missed:   p.missed,
		Running:  p.running,
		NextAt:   p.nextAt,
		LastEdge: p.lastEdge,
		RNGDraws: p.rng.Draws(),
	}
	if p.running {
		ev, ok := p.engine.Lookup(p.nextID)
		if !ok {
			return State{}, fmt.Errorf("display: running panel has no pending edge event")
		}
		st.Pending = &ev
	}
	return st, nil
}

// Restore loads checkpointed state into a freshly constructed panel and
// re-inserts its pending edge into the engine.
func (p *Panel) Restore(st State) error {
	if p.running || p.edges != 0 || p.rng.Draws() != 0 {
		return fmt.Errorf("display: restore into a started panel")
	}
	if st.Period <= 0 {
		return fmt.Errorf("display: restored period %v is not positive", st.Period)
	}
	if st.Running != (st.Pending != nil) {
		return fmt.Errorf("display: restored running=%t inconsistent with pending edge presence", st.Running)
	}
	p.period = st.Period
	p.truePeriod = skewed(st.Period, p.cfg.PeriodSkewPPM)
	p.seq, p.edges, p.missed = st.Seq, st.Edges, st.Missed
	p.running = st.Running
	p.nextAt, p.lastEdge = st.NextAt, st.LastEdge
	p.rng.Skip(st.RNGDraws)
	if st.Pending != nil {
		if err := p.engine.RestoreEvent(*st.Pending, p.edgeFn); err != nil {
			return fmt.Errorf("display: %w", err)
		}
		p.nextID = st.Pending.ID
	}
	return nil
}
