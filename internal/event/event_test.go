package event

import (
	"sort"
	"testing"
	"testing/quick"

	"dvsync/internal/simtime"
)

func TestFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []simtime.Time
	times := []simtime.Time{50, 10, 30, 20, 40}
	for _, at := range times {
		at := at
		e.At(at, PriorityControl, func(now simtime.Time) {
			if now != at {
				t.Errorf("handler time %v, scheduled %v", now, at)
			}
			got = append(got, now)
		})
	}
	e.RunAll()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Errorf("events out of order: %v", got)
	}
	if len(got) != len(times) {
		t.Errorf("fired %d events, want %d", len(got), len(times))
	}
}

func TestSameInstantPriorityOrder(t *testing.T) {
	e := NewEngine()
	var got []string
	e.At(10, PriorityControl, func(simtime.Time) { got = append(got, "control") })
	e.At(10, PriorityHardware, func(simtime.Time) { got = append(got, "hw") })
	e.At(10, PrioritySignal, func(simtime.Time) { got = append(got, "signal") })
	e.RunAll()
	want := []string{"hw", "signal", "control"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestSameInstantFIFOWithinPriority(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, PriorityPipeline, func(simtime.Time) { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.At(10, PriorityControl, func(simtime.Time) { fired = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(id) {
		t.Fatal("second Cancel should return false")
	}
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	e := NewEngine()
	var second simtime.Time
	e.At(100, PriorityControl, func(simtime.Time) {
		e.After(50, PriorityControl, func(now simtime.Time) { second = now })
	})
	e.RunAll()
	if second != 150 {
		t.Errorf("After fired at %v, want 150", second)
	}
}

func TestRunHorizon(t *testing.T) {
	e := NewEngine()
	var fired []simtime.Time
	for _, at := range []simtime.Time{10, 20, 30, 40} {
		e.At(at, PriorityControl, func(now simtime.Time) { fired = append(fired, now) })
	}
	e.Run(25)
	if len(fired) != 2 {
		t.Fatalf("fired %d events before horizon, want 2", len(fired))
	}
	if e.Now() != 25 {
		t.Errorf("engine time %v, want horizon 25", e.Now())
	}
	e.RunAll()
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(10, PriorityControl, func(simtime.Time) { count++; e.Stop() })
	e.At(20, PriorityControl, func(simtime.Time) { count++ })
	e.RunAll()
	if count != 1 {
		t.Errorf("count = %d after Stop, want 1", count)
	}
	e.RunAll()
	if count != 2 {
		t.Errorf("count = %d after resume, want 2", count)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, PriorityControl, func(simtime.Time) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(50, PriorityControl, func(simtime.Time) {})
	})
	e.RunAll()
}

func TestPendingAndFiredCounters(t *testing.T) {
	e := NewEngine()
	e.At(1, PriorityControl, func(simtime.Time) {})
	e.At(2, PriorityControl, func(simtime.Time) {})
	if e.Pending() != 2 {
		t.Errorf("Pending = %d", e.Pending())
	}
	e.RunAll()
	if e.Pending() != 0 || e.Fired() != 2 {
		t.Errorf("Pending=%d Fired=%d", e.Pending(), e.Fired())
	}
}

// Property: for any set of (time, priority) pairs, dispatch order is the
// lexicographic (time, priority, insertion) order.
func TestDispatchOrderProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		e := NewEngine()
		type key struct {
			at   simtime.Time
			prio Priority
			seq  int
		}
		var want []key
		var got []key
		for i, spec := range raw {
			k := key{simtime.Time(spec >> 8 & 0xffff), Priority(spec % 5), i}
			want = append(want, k)
			e.At(k.at, k.prio, func(simtime.Time) { got = append(got, k) })
		}
		sort.SliceStable(want, func(i, j int) bool {
			if want[i].at != want[j].at {
				return want[i].at < want[j].at
			}
			return want[i].prio < want[j].prio
		})
		e.RunAll()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTickerBasic(t *testing.T) {
	e := NewEngine()
	var ticks []simtime.Time
	tk := NewTicker(e, 100, PriorityHardware, func(now simtime.Time) {
		ticks = append(ticks, now)
		if len(ticks) == 5 {
			e.Stop()
		}
	})
	tk.Start(0)
	e.RunAll()
	want := []simtime.Time{0, 100, 200, 300, 400}
	if len(ticks) != len(want) {
		t.Fatalf("ticks %v", ticks)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks %v, want %v", ticks, want)
		}
	}
	if tk.Ticks() != 5 {
		t.Errorf("Ticks() = %d", tk.Ticks())
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk = NewTicker(e, 10, PriorityHardware, func(now simtime.Time) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	tk.Start(0)
	e.Run(1000)
	if count != 3 {
		t.Errorf("count = %d after Stop, want 3", count)
	}
	if tk.Active() {
		t.Error("ticker still active after Stop")
	}
}

func TestTickerPeriodChange(t *testing.T) {
	e := NewEngine()
	var ticks []simtime.Time
	var tk *Ticker
	tk = NewTicker(e, 100, PriorityHardware, func(now simtime.Time) {
		ticks = append(ticks, now)
		if now == 200 {
			// Switch to 50 from the tick after next (the successor at 300
			// is already scheduled); emulate an LTPO-style change by
			// rescheduling immediately instead.
			tk.SetPeriod(50)
			tk.Reschedule(now.Add(50))
		}
	})
	tk.Start(0)
	e.Run(400)
	want := []simtime.Time{0, 100, 200, 250, 300, 350, 400}
	if len(ticks) != len(want) {
		t.Fatalf("ticks %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks %v, want %v", ticks, want)
		}
	}
}

func TestTickerDoubleStartPanics(t *testing.T) {
	e := NewEngine()
	tk := NewTicker(e, 10, PriorityHardware, func(simtime.Time) {})
	tk.Start(0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on double Start")
		}
	}()
	tk.Start(5)
}

func TestWatchdogTripsOnStalledAgenda(t *testing.T) {
	e := NewEngine()
	e.SetInstantLimit(100)
	var loop Handler
	loop = func(now simtime.Time) { e.After(0, PriorityControl, loop) }
	e.At(5, PriorityControl, loop)
	e.RunAll()
	err := e.Err()
	if err == nil {
		t.Fatal("stalled agenda did not trip the watchdog")
	}
	wd, ok := err.(*WatchdogError)
	if !ok {
		t.Fatalf("Err() = %T, want *WatchdogError", err)
	}
	if wd.At != 5 {
		t.Fatalf("watchdog At = %v, want 5", wd.At)
	}
	if wd.Dispatched != 100 {
		t.Fatalf("watchdog Dispatched = %d, want the limit 100", wd.Dispatched)
	}
	if wd.LastPriority != PriorityControl {
		t.Fatalf("watchdog LastPriority = %v, want PriorityControl", wd.LastPriority)
	}
	// The loop schedules one event per dispatch starting from id/seq 1, so
	// the 100th dispatched event is exactly id 100 / seq 100 — the error
	// pins the offending event deterministically.
	if wd.LastSeq != 100 || wd.LastID != 100 {
		t.Fatalf("watchdog last event = seq %d id %d, want 100/100", wd.LastSeq, wd.LastID)
	}
}

func TestWatchdogDeterministicAcrossRuns(t *testing.T) {
	run := func() string {
		e := NewEngine()
		e.SetInstantLimit(64)
		var loop Handler
		loop = func(now simtime.Time) { e.After(0, PrioritySignal, loop) }
		e.At(3, PrioritySignal, loop)
		e.RunAll()
		return e.Err().Error()
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("watchdog error diverged between runs:\n%s\n%s", first, got)
		}
	}
}

func TestWatchdogIgnoresAdvancingClock(t *testing.T) {
	e := NewEngine()
	e.SetInstantLimit(100)
	n := 0
	var chain Handler
	chain = func(now simtime.Time) {
		n++
		if n < 1000 {
			e.After(1, PriorityControl, chain)
		}
	}
	e.At(0, PriorityControl, chain)
	e.RunAll()
	if err := e.Err(); err != nil {
		t.Fatalf("advancing chain tripped the watchdog: %v", err)
	}
	if n != 1000 {
		t.Fatalf("chain dispatched %d times, want 1000", n)
	}
}

func TestWatchdogAllowsBurstsBelowLimit(t *testing.T) {
	e := NewEngine()
	e.SetInstantLimit(100)
	fired := 0
	for i := 0; i < 99; i++ {
		e.At(7, PriorityControl, func(simtime.Time) { fired++ })
	}
	e.At(8, PriorityControl, func(simtime.Time) { fired++ })
	e.RunAll()
	if err := e.Err(); err != nil {
		t.Fatalf("burst below the limit tripped the watchdog: %v", err)
	}
	if fired != 100 {
		t.Fatalf("fired %d events, want 100", fired)
	}
}

func TestWatchdogPoisonsSubsequentRuns(t *testing.T) {
	e := NewEngine()
	e.SetInstantLimit(10)
	var loop Handler
	loop = func(now simtime.Time) { e.After(0, PriorityControl, loop) }
	e.At(1, PriorityControl, loop)
	e.RunAll()
	if e.Err() == nil {
		t.Fatal("watchdog did not trip")
	}
	before := e.Fired()
	e.RunAll() // must refuse to resume the poisoned agenda
	if e.Fired() != before {
		t.Fatal("engine resumed dispatching after watchdog trip")
	}
}

func TestSetInstantLimitRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive instant limit accepted")
		}
	}()
	NewEngine().SetInstantLimit(0)
}
