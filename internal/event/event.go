// Package event implements the deterministic discrete-event engine that
// drives every simulation in this repository.
//
// The engine maintains an agenda of timestamped events ordered by (time,
// priority, sequence). Sequence numbers make scheduling fully deterministic:
// two events at the same instant and priority fire in the order they were
// scheduled, so repeated runs with the same seed produce identical traces.
//
// Every engine operation runs inside the simulation loop, so the whole
// package is held to the hot-path allocation discipline.
//
//dvlint:hotpath the agenda is exercised by every simulated event
package event

import (
	"container/heap"
	"fmt"

	"dvsync/internal/simtime"
)

// Priority orders events that share a timestamp. Lower values fire first.
// The bands mirror the hardware/software layering of a real rendering stack:
// the panel latches before software reacts to the same VSync edge.
type Priority int

const (
	// PriorityHardware is used by panel refresh / HW-VSync events.
	PriorityHardware Priority = iota
	// PrioritySignal is used by software VSync distribution.
	PrioritySignal
	// PriorityPipeline is used by pipeline stage completions.
	PriorityPipeline
	// PriorityInput is used by synthetic input delivery.
	PriorityInput
	// PriorityControl is used by controllers, calibration and bookkeeping.
	PriorityControl
)

// Handler is the callback invoked when an event fires. now is the event's
// timestamp, which is also the engine's current time for the duration of the
// call.
type Handler func(now simtime.Time)

// ID identifies a scheduled event so it can be cancelled.
type ID uint64

type item struct {
	at       simtime.Time
	prio     Priority
	seq      uint64
	id       ID
	fn       Handler
	canceled bool
	index    int
}

type agenda []*item

func (a agenda) Len() int { return len(a) }

func (a agenda) Less(i, j int) bool {
	if a[i].at != a[j].at {
		return a[i].at < a[j].at
	}
	if a[i].prio != a[j].prio {
		return a[i].prio < a[j].prio
	}
	return a[i].seq < a[j].seq
}

func (a agenda) Swap(i, j int) {
	a[i], a[j] = a[j], a[i]
	a[i].index = i
	a[j].index = j
}

func (a *agenda) Push(x any) {
	it := x.(*item)
	it.index = len(*a)
	*a = append(*a, it)
}

func (a *agenda) Pop() any {
	old := *a
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*a = old[:n-1]
	return it
}

// inBatch marks an item's index while it sits in the engine's dispatch
// batch: drained out of the heap for the current instant but not yet fired.
// Batched items stay in byID so Cancel keeps working; the marker tells
// Cancel the item is not a heap tombstone.
const inBatch = -2

// DefaultInstantLimit is the no-progress watchdog bound: the maximum number
// of events the engine dispatches at a single instant before concluding the
// agenda is stuck in a zero-delay loop. Legitimate simulations dispatch at
// most a few dozen events per instant; the default leaves orders of
// magnitude of headroom.
const DefaultInstantLimit = 1 << 16

// WatchdogError reports a tripped no-progress watchdog. It carries the
// last-dispatched event's identity so the offending scheduling loop can be
// diagnosed from the error alone.
type WatchdogError struct {
	// At is the instant the clock stopped advancing.
	At simtime.Time
	// Dispatched is how many events fired at that instant.
	Dispatched int
	// LastPriority, LastSeq and LastID identify the last-dispatched event.
	LastPriority Priority
	LastSeq      uint64
	LastID       ID
}

// Error implements error.
func (e *WatchdogError) Error() string {
	//dvlint:ignore hotalloc error formatting runs once, after the watchdog has already halted the run
	return fmt.Sprintf(
		"event: no-progress watchdog: %d events dispatched at t=%v without the clock advancing "+
			"(last event: priority=%d seq=%d id=%d)",
		e.Dispatched, e.At, int(e.LastPriority), e.LastSeq, uint64(e.LastID))
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; simulations are deterministic sequential programs.
type Engine struct {
	now     simtime.Time
	seq     uint64
	nextID  ID
	events  agenda
	byID    map[ID]*item
	stopped bool
	fired   uint64

	// free recycles dispatched agenda items: a simulation schedules one
	// event per pipeline hop per frame, and without the free list every
	// hop is a fresh allocation. Items enter after dispatch or canceled
	// removal and are reused by At.
	free []*item
	// ncanceled counts canceled items still sitting in the heap; when they
	// dominate, Cancel compacts the agenda instead of waiting for the pops
	// to wash them out (tickers under Reschedule churn generate many).
	ncanceled int
	// batch is the reused per-instant dispatch buffer: Run drains every
	// event sharing the earliest timestamp into it with one burst of heap
	// pops, then dispatches straight off the slice instead of interleaving
	// a pop (and its free-list churn) with every handler call. It is empty
	// whenever Run returns, so Pending and the checkpoint capture never see
	// half-drained instants.
	batch []*item

	instantLimit int
	instantAt    simtime.Time
	instantFired int
	wderr        *WatchdogError
}

// NewEngine returns an engine positioned at t = 0 with an empty agenda.
func NewEngine() *Engine {
	//dvlint:ignore hotalloc one-time engine construction, not a per-event cost
	return &Engine{byID: make(map[ID]*item), instantLimit: DefaultInstantLimit}
}

// SetInstantLimit overrides the no-progress watchdog bound (events per
// instant). Non-positive limits panic: the watchdog cannot be disabled,
// only widened.
func (e *Engine) SetInstantLimit(n int) {
	if n < 1 {
		panic(fmt.Sprintf("event: non-positive instant limit %d", n))
	}
	e.instantLimit = n
}

// Err returns the watchdog error of a stalled run, or nil after clean runs.
func (e *Engine) Err() error {
	if e.wderr == nil {
		return nil
	}
	return e.wderr
}

// Now returns the engine's current virtual time.
func (e *Engine) Now() simtime.Time { return e.now }

// Pending returns the number of events still scheduled.
func (e *Engine) Pending() int { return len(e.byID) }

// Fired returns the total number of events dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn to run at the given instant with the given priority.
// Scheduling in the past is a programming error and panics.
func (e *Engine) At(at simtime.Time, prio Priority, fn Handler) ID {
	if at < e.now {
		panic(fmt.Sprintf("event: scheduling at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("event: nil handler")
	}
	e.nextID++
	e.seq++
	var it *item
	if n := len(e.free); n > 0 {
		it = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*it = item{at: at, prio: prio, seq: e.seq, id: e.nextID, fn: fn}
	} else {
		//dvlint:ignore hotalloc free-list grow path: each item is allocated once and recycled forever after
		it = &item{at: at, prio: prio, seq: e.seq, id: e.nextID, fn: fn}
	}
	heap.Push(&e.events, it)
	e.byID[it.id] = it
	return it.id
}

// recycle returns an item to the free list. The caller guarantees it has
// been removed from both the heap and byID. The handler reference is
// dropped so the closure (and whatever it captures) is not kept alive by
// the pool.
func (e *Engine) recycle(it *item) {
	it.fn = nil
	it.canceled = false
	e.free = append(e.free, it)
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d simtime.Duration, prio Priority, fn Handler) ID {
	if d < 0 {
		panic(fmt.Sprintf("event: negative delay %v", d))
	}
	return e.At(e.now.Add(d), prio, fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or unknown
// ID is a no-op and returns false.
func (e *Engine) Cancel(id ID) bool {
	it, ok := e.byID[id]
	if !ok {
		return false
	}
	it.canceled = true
	delete(e.byID, id)
	if it.index == inBatch {
		// Drained for the current instant but not yet dispatched: the batch
		// loop skips and recycles it. It is not a heap tombstone, so it does
		// not count toward compaction.
		return true
	}
	e.ncanceled++
	// Lazy compaction: canceled items normally wash out as the heap pops
	// them, but workloads that cancel far ahead of the clock (LTPO tickers
	// under Reschedule) can let tombstones dominate the agenda. Rebuilding
	// only removes items the comparator would have skipped anyway — the
	// (at, prio, seq) order of live items is total, so dispatch order is
	// unchanged.
	if e.ncanceled > 64 && e.ncanceled*2 > len(e.events) {
		e.compact()
	}
	return true
}

// compact removes canceled tombstones from the agenda and restores the
// heap invariant over the survivors.
func (e *Engine) compact() {
	kept := e.events[:0]
	for _, it := range e.events {
		if it.canceled {
			e.recycle(it)
			continue
		}
		kept = append(kept, it)
	}
	for i := len(kept); i < len(e.events); i++ {
		e.events[i] = nil
	}
	e.events = kept
	for i, it := range e.events {
		it.index = i
	}
	heap.Init(&e.events)
	e.ncanceled = 0
}

// Stop makes the current Run call return once the in-flight event handler
// completes.
func (e *Engine) Stop() { e.stopped = true }

// runInstant drains every event scheduled at instant t into the reused
// batch slice with one burst of heap pops, then dispatches from the slice.
// Dispatch order is byte-identical to the old pop-per-event loop: before
// each batch entry fires, the heap head is checked for a same-instant event
// a previous handler scheduled that sorts earlier (lower priority band, or
// same band with a smaller sequence — impossible, new events get larger
// sequences, but the comparison is kept total); if one exists the remaining
// batch spills back into the heap and the outer loop re-drains the instant.
func (e *Engine) runInstant(t simtime.Time) {
	for len(e.events) > 0 && e.events[0].at == t {
		it := heap.Pop(&e.events).(*item)
		if it.canceled {
			e.ncanceled--
			e.recycle(it)
			continue
		}
		it.index = inBatch
		e.batch = append(e.batch, it)
	}
	e.now = t
	for i := 0; i < len(e.batch); i++ {
		it := e.batch[i]
		if it.canceled {
			// Canceled by an earlier handler in this same batch; Cancel
			// already removed it from byID.
			e.batch[i] = nil
			e.recycle(it)
			continue
		}
		// Order guard: wash canceled heads out (as peekTime would), then
		// spill if a handler scheduled a same-instant event that must fire
		// before the rest of the batch.
		for len(e.events) > 0 && e.events[0].canceled {
			e.ncanceled--
			e.recycle(heap.Pop(&e.events).(*item))
		}
		if len(e.events) > 0 && e.events[0].at == t {
			if head := e.events[0]; head.prio < it.prio || (head.prio == it.prio && head.seq < it.seq) {
				e.spill(i)
				return
			}
		}
		delete(e.byID, it.id)
		if t == e.instantAt {
			e.instantFired++
		} else {
			e.instantAt, e.instantFired = t, 1
		}
		e.fired++
		fn, prio, seq, id := it.fn, it.prio, it.seq, it.id
		// Recycle before dispatch: the handler may schedule new events, and
		// letting it reuse this slot keeps the steady-state agenda footprint
		// at the live-event count. All fields needed afterwards were copied.
		e.batch[i] = nil
		e.recycle(it)
		fn(t)
		if e.instantFired >= e.instantLimit && e.wderr == nil {
			// The clock has not advanced for instantLimit dispatches: a
			// zero-delay scheduling loop. Record the offender and halt.
			//dvlint:ignore hotalloc the watchdog trips at most once and ends the run
			e.wderr = &WatchdogError{
				At:           t,
				Dispatched:   e.instantFired,
				LastPriority: prio,
				LastSeq:      seq,
				LastID:       id,
			}
			e.stopped = true
		}
		if e.stopped {
			// Stop (or the watchdog) must leave undispatched events pending:
			// callers that drain after stopping (finish's recorder flush,
			// checkpoint capture) expect them back on the agenda.
			e.spill(i + 1)
			return
		}
	}
	e.batch = e.batch[:0]
}

// spill returns batch[i:] to the heap (canceled entries are recycled — they
// are already out of byID) and empties the batch.
func (e *Engine) spill(i int) {
	for ; i < len(e.batch); i++ {
		it := e.batch[i]
		e.batch[i] = nil
		if it == nil {
			continue
		}
		if it.canceled {
			e.recycle(it)
			continue
		}
		heap.Push(&e.events, it)
	}
	e.batch = e.batch[:0]
}

// Run dispatches events in order until the agenda is empty, Stop is called,
// or the next event would fire after the horizon. The engine's clock is left
// at the last dispatched event (or at the horizon when it ends the run).
func (e *Engine) Run(horizon simtime.Time) {
	if e.wderr != nil {
		// A tripped watchdog poisons the engine: the agenda still holds the
		// runaway loop, so resuming would stall again immediately.
		return
	}
	e.stopped = false
	for !e.stopped {
		next, ok := e.peekTime()
		if !ok {
			return
		}
		if next > horizon {
			e.now = horizon
			return
		}
		e.runInstant(next)
	}
}

// Reset returns the engine to its as-constructed condition — clock at zero,
// empty agenda, zeroed counters, watchdog re-armed — while keeping the item
// free list, the batch buffer and the byID map's capacity warm, so a reused
// engine schedules its next run without allocating. A Reset engine satisfies
// the same freshness preconditions as a NewEngine (checkpoint.Restore
// checks them), so pooled runs snapshot and resume exactly like fresh ones.
func (e *Engine) Reset() {
	for i, it := range e.events {
		e.events[i] = nil
		e.recycle(it)
	}
	e.events = e.events[:0]
	for i, it := range e.batch {
		e.batch[i] = nil
		if it != nil {
			e.recycle(it)
		}
	}
	e.batch = e.batch[:0]
	clear(e.byID)
	e.now = 0
	e.seq = 0
	e.nextID = 0
	e.stopped = false
	e.fired = 0
	e.ncanceled = 0
	e.instantAt = 0
	e.instantFired = 0
	e.wderr = nil
}

// RunAll dispatches events until none remain or Stop is called.
func (e *Engine) RunAll() { e.Run(simtime.Never) }

func (e *Engine) peekTime() (simtime.Time, bool) {
	for len(e.events) > 0 {
		if e.events[0].canceled {
			e.ncanceled--
			e.recycle(heap.Pop(&e.events).(*item))
			continue
		}
		return e.events[0].at, true
	}
	return 0, false
}

// NextEventTime returns the timestamp of the earliest pending event.
func (e *Engine) NextEventTime() (simtime.Time, bool) { return e.peekTime() }

// Ticker repeatedly schedules a handler at a fixed period. It is the
// building block for VSync generation.
type Ticker struct {
	engine  *Engine
	period  simtime.Duration
	prio    Priority
	fn      Handler
	tick    Handler // the reusable per-tick handler; one allocation per ticker
	pending ID
	active  bool
	ticks   uint64
}

// NewTicker creates a stopped ticker; call Start to begin ticking.
func NewTicker(e *Engine, period simtime.Duration, prio Priority, fn Handler) *Ticker {
	if period <= 0 {
		panic("event: non-positive ticker period")
	}
	//dvlint:ignore hotalloc one-time ticker construction
	t := &Ticker{engine: e, period: period, prio: prio, fn: fn}
	//dvlint:ignore hotalloc the tick closure is built once per ticker and reused for every tick
	t.tick = func(now simtime.Time) {
		if !t.active {
			return
		}
		t.ticks++
		// Schedule the successor before running the handler so the handler
		// may adjust the period (LTPO) and see a consistent "next" slot.
		t.schedule(now.Add(t.period))
		t.fn(now)
	}
	return t
}

// Start schedules the first tick at the given instant. Starting an active
// ticker panics: callers must stop it first.
func (t *Ticker) Start(first simtime.Time) {
	if t.active {
		panic("event: ticker already active")
	}
	t.active = true
	t.schedule(first)
}

func (t *Ticker) schedule(at simtime.Time) {
	t.pending = t.engine.At(at, t.prio, t.tick)
}

// Stop cancels any pending tick.
func (t *Ticker) Stop() {
	if !t.active {
		return
	}
	t.active = false
	t.engine.Cancel(t.pending)
}

// SetPeriod changes the tick period. The change takes effect for ticks
// scheduled after the currently pending one, or immediately via Reschedule.
func (t *Ticker) SetPeriod(p simtime.Duration) {
	if p <= 0 {
		panic("event: non-positive ticker period")
	}
	t.period = p
}

// Period returns the current tick period.
func (t *Ticker) Period() simtime.Duration { return t.period }

// Ticks returns the number of ticks fired since Start.
func (t *Ticker) Ticks() uint64 { return t.ticks }

// Active reports whether the ticker is running.
func (t *Ticker) Active() bool { return t.active }

// Reschedule cancels the pending tick and schedules the next one at the
// given instant. Used when a display changes refresh rate mid-stream.
func (t *Ticker) Reschedule(next simtime.Time) {
	if !t.active {
		panic("event: reschedule of stopped ticker")
	}
	t.engine.Cancel(t.pending)
	t.schedule(next)
}
