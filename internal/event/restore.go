package event

import (
	"container/heap"
	"fmt"

	"dvsync/internal/simtime"
)

// This file is the engine's checkpoint surface. A snapshot is taken at a
// quiescent boundary (between Run segments), so the only engine state that
// matters is the scalar counters plus the live agenda. Each agenda entry is
// re-inserted by the subsystem that owns its handler — closures cannot be
// serialised — carrying its exact (at, prio, seq, id) identity so post-resume
// dispatch order, including same-instant tie-breaks, matches an uninterrupted
// run. The free list and tombstone bookkeeping are deliberately *not* state:
// at a quiescent boundary byID holds no cancelled entries, and the free list
// only affects allocation counts, never dispatch order.
//
// Everything here runs once per snapshot or resume, outside the dispatch
// loop, so its allocations carry explicit hotalloc waivers (the package-wide
// hotpath directive cannot be scoped out per file).

// ScheduledEvent is the engine-level identity of one live agenda entry.
type ScheduledEvent struct {
	At   simtime.Time `json:"at"`
	Prio Priority     `json:"prio"`
	Seq  uint64       `json:"seq"`
	ID   ID           `json:"id"`
}

// State holds the engine's scalar scheduling state. Restoring it (and every
// live event) makes post-resume At calls issue the same sequence numbers and
// IDs as the uninterrupted run.
type State struct {
	Now    simtime.Time `json:"now"`
	Seq    uint64       `json:"seq"`
	NextID ID           `json:"next_id"`
	Fired  uint64       `json:"fired"`
}

// Stopped reports whether the last Run call ended via Stop.
func (e *Engine) Stopped() bool { return e.stopped }

// State captures the scalar scheduling state for a checkpoint.
func (e *Engine) State() State {
	return State{Now: e.now, Seq: e.seq, NextID: e.nextID, Fired: e.fired}
}

// Lookup returns the scheduling identity of a live event.
func (e *Engine) Lookup(id ID) (ScheduledEvent, bool) {
	it, ok := e.byID[id]
	if !ok {
		return ScheduledEvent{}, false
	}
	return ScheduledEvent{At: it.at, Prio: it.prio, Seq: it.seq, ID: it.id}, true
}

// Restore loads checkpointed scalar state into a freshly constructed engine.
// Restoring into an engine that has scheduled or dispatched anything is
// rejected: partial restores would corrupt the identity counters.
func (e *Engine) Restore(st State) error {
	if len(e.byID) != 0 || len(e.events) != 0 || e.seq != 0 || e.fired != 0 || e.now != 0 {
		//dvlint:ignore hotalloc once-per-resume error path
		return fmt.Errorf("event: restore into a non-fresh engine")
	}
	if st.Now < 0 {
		//dvlint:ignore hotalloc once-per-resume error path
		return fmt.Errorf("event: restored clock %v is negative", st.Now)
	}
	if uint64(st.NextID) != st.Seq {
		// At increments both counters in lockstep; divergence means the
		// snapshot was not produced by this engine.
		//dvlint:ignore hotalloc once-per-resume error path
		return fmt.Errorf("event: restored id counter %d does not match seq counter %d", uint64(st.NextID), st.Seq)
	}
	e.now, e.seq, e.nextID, e.fired = st.Now, st.Seq, st.NextID, st.Fired
	return nil
}

// RestoreEvent re-inserts one checkpointed agenda entry with its exact
// scheduling identity. Entries may be restored in any order; validation
// rejects identities the engine could not have issued.
func (e *Engine) RestoreEvent(ev ScheduledEvent, fn Handler) error {
	if fn == nil {
		//dvlint:ignore hotalloc once-per-resume error path
		return fmt.Errorf("event: restore of event id=%d with nil handler", uint64(ev.ID))
	}
	if ev.At < e.now {
		//dvlint:ignore hotalloc once-per-resume error path
		return fmt.Errorf("event: restored event at %v before now %v", ev.At, e.now)
	}
	if ev.Seq == 0 || ev.Seq > e.seq {
		//dvlint:ignore hotalloc once-per-resume error path
		return fmt.Errorf("event: restored seq %d outside issued range [1, %d]", ev.Seq, e.seq)
	}
	if ev.ID == 0 || ev.ID > e.nextID {
		//dvlint:ignore hotalloc once-per-resume error path
		return fmt.Errorf("event: restored id %d outside issued range [1, %d]", uint64(ev.ID), uint64(e.nextID))
	}
	if ev.Prio < PriorityHardware || ev.Prio > PriorityControl {
		//dvlint:ignore hotalloc once-per-resume error path
		return fmt.Errorf("event: restored priority %d out of range", int(ev.Prio))
	}
	if _, dup := e.byID[ev.ID]; dup {
		//dvlint:ignore hotalloc once-per-resume error path
		return fmt.Errorf("event: duplicate restored id %d", uint64(ev.ID))
	}
	for _, it := range e.events {
		if it.seq == ev.Seq {
			// Sequence numbers break same-instant ties; a duplicate would make
			// dispatch order between the two entries unspecified.
			//dvlint:ignore hotalloc once-per-resume error path
			return fmt.Errorf("event: duplicate restored seq %d", ev.Seq)
		}
	}
	//dvlint:ignore hotalloc once-per-resume agenda rebuild
	it := &item{at: ev.At, prio: ev.Prio, seq: ev.Seq, id: ev.ID, fn: fn}
	heap.Push(&e.events, it)
	e.byID[it.id] = it
	return nil
}
