package event

import (
	"testing"

	"dvsync/internal/simtime"
)

// TestBatchOrderGuardSameInstantLowerPriority is the adversarial case of
// batched dispatch: a handler schedules a same-instant event in a LOWER
// priority band than items already drained into the batch. The order
// guard must spill the remaining batch back and dispatch the newcomer in
// its correct (prio, seq) slot, exactly as unbatched dispatch would.
func TestBatchOrderGuardSameInstantLowerPriority(t *testing.T) {
	e := NewEngine()
	var got []string
	e.At(10, PriorityPipeline, func(now simtime.Time) {
		got = append(got, "pipeline")
		// Same instant, higher-urgency band than the already-drained
		// PriorityControl item below.
		e.At(10, PriorityInput, func(simtime.Time) { got = append(got, "input") })
	})
	e.At(10, PriorityControl, func(simtime.Time) { got = append(got, "control") })
	e.RunAll()
	want := []string{"pipeline", "input", "control"}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

// TestBatchSameInstantFIFOAfterSpill checks that a spill-and-redrain
// preserves FIFO order within a priority band: the re-pushed batch items
// keep their original seq, so they still dispatch before later-scheduled
// same-priority work.
func TestBatchSameInstantFIFOAfterSpill(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(5, PriorityHardware, func(simtime.Time) {
		got = append(got, 0)
		// Forces a spill of the two PriorityPipeline items drained below.
		e.At(5, PrioritySignal, func(simtime.Time) { got = append(got, 1) })
	})
	e.At(5, PriorityPipeline, func(simtime.Time) { got = append(got, 2) })
	e.At(5, PriorityPipeline, func(simtime.Time) { got = append(got, 3) })
	e.RunAll()
	want := []int{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

// TestCancelDrainedBatchItem cancels an event at the same instant it
// would fire, from a handler that runs earlier in the batch: the canceled
// item must not fire, Cancel must report true, and the agenda's tombstone
// accounting must survive a subsequent run.
func TestCancelDrainedBatchItem(t *testing.T) {
	e := NewEngine()
	fired := false
	var id ID
	e.At(10, PriorityHardware, func(simtime.Time) {
		if !e.Cancel(id) {
			t.Error("Cancel of a drained same-instant event returned false")
		}
		if e.Cancel(id) {
			t.Error("second Cancel returned true")
		}
	})
	id = e.At(10, PriorityControl, func(simtime.Time) { fired = true })
	e.RunAll()
	if fired {
		t.Error("canceled batch item fired")
	}
	if got := e.Fired(); got != 1 {
		t.Errorf("Fired() = %d, want 1", got)
	}
}

// TestStopMidBatchLeavesRemainderPending stops the engine from inside a
// batch: the undispatched tail must return to the agenda as pending work,
// not be dropped, so a later Run (or RunAll drain) still sees it.
func TestStopMidBatchLeavesRemainderPending(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(10, PriorityHardware, func(simtime.Time) {
		got = append(got, 0)
		e.Stop()
	})
	e.At(10, PriorityControl, func(simtime.Time) { got = append(got, 1) })
	e.Run(100)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("fired %v before stop, want [0]", got)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d after mid-batch stop, want 1", e.Pending())
	}
	e.RunAll()
	if len(got) != 2 || got[1] != 1 {
		t.Fatalf("fired %v after drain, want [0 1]", got)
	}
}

// runScript drives one fixed schedule — including same-instant fan-out
// and a cancellation — and returns the dispatch log.
func runScript(e *Engine) []string {
	var got []string
	logf := func(s string) Handler {
		return func(now simtime.Time) { got = append(got, s) }
	}
	e.At(10, PriorityPipeline, func(now simtime.Time) {
		got = append(got, "a")
		e.At(10, PriorityInput, logf("b"))
		e.After(5, PriorityPipeline, logf("c"))
	})
	e.At(10, PriorityControl, logf("d"))
	id := e.At(20, PriorityControl, logf("never"))
	e.At(12, PriorityHardware, func(now simtime.Time) {
		got = append(got, "e")
		e.Cancel(id)
	})
	e.RunAll()
	return got
}

// TestResetReplaysIdentically checks the Runner contract at the engine
// layer: Reset returns a used engine to its as-constructed condition, and
// an identical schedule replays the identical dispatch sequence with
// identical counters.
func TestResetReplaysIdentically(t *testing.T) {
	e := NewEngine()
	first := runScript(e)
	firedFirst, now := e.Fired(), e.Now()

	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.Fired() != 0 {
		t.Fatalf("after Reset: now=%v pending=%d fired=%d, want all zero",
			e.Now(), e.Pending(), e.Fired())
	}

	second := runScript(e)
	if len(first) != len(second) {
		t.Fatalf("replay fired %v, first run fired %v", second, first)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay order %v, first run %v", second, first)
		}
	}
	if e.Fired() != firedFirst || e.Now() != now {
		t.Errorf("replay counters fired=%d now=%v, first run fired=%d now=%v",
			e.Fired(), e.Now(), firedFirst, now)
	}
}

// TestResetClearsWatchdogPoison checks that Reset clears a tripped
// watchdog: the engine must run again instead of refusing with the stale
// error.
func TestResetClearsWatchdogPoison(t *testing.T) {
	e := NewEngine()
	e.SetInstantLimit(8)
	var spin Handler
	spin = func(now simtime.Time) { e.At(now, PriorityControl, spin) }
	e.At(0, PriorityControl, spin)
	e.RunAll()
	if e.Err() == nil {
		t.Fatal("watchdog did not trip")
	}
	e.Reset()
	if e.Err() != nil {
		t.Fatalf("Err() = %v after Reset, want nil", e.Err())
	}
	fired := false
	e.At(1, PriorityControl, func(simtime.Time) { fired = true })
	e.RunAll()
	if !fired {
		t.Error("engine did not run after Reset cleared the watchdog")
	}
}
