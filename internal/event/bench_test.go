package event

import (
	"testing"

	"dvsync/internal/simtime"
)

// BenchmarkEventEngine measures the scheduler's steady-state cost: a panel
// ticker driving a three-hop event chain per tick (the shape of one frame
// through the pipeline), plus a cancel per tick to exercise tombstone
// handling. With the free list the loop should run at a near-constant
// handful of live allocations regardless of tick count.
func BenchmarkEventEngine(b *testing.B) {
	const (
		period = 8 * simtime.Millisecond
		ticks  = 1000
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		fired := 0
		hop3 := func(now simtime.Time) { fired++ }
		hop2 := func(now simtime.Time) {
			e.After(simtime.Millisecond, PriorityPipeline, hop3)
		}
		tk := NewTicker(e, period, PriorityHardware, func(now simtime.Time) {
			e.After(2*simtime.Millisecond, PriorityPipeline, hop2)
			// Schedule-then-cancel models a controller arming a timeout that
			// the frame's completion races and wins.
			id := e.After(6*simtime.Millisecond, PriorityControl, hop3)
			e.Cancel(id)
		})
		tk.Start(0)
		e.Run(simtime.Time(ticks) * simtime.Time(period))
		tk.Stop()
		if fired == 0 {
			b.Fatal("no events fired")
		}
	}
}
