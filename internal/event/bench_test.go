package event_test

import (
	"testing"

	"dvsync/internal/bench"
)

// BenchmarkEventEngine measures the scheduler's steady-state cost: a panel
// ticker driving a three-hop event chain per tick (the shape of one frame
// through the pipeline), plus a cancel per tick to exercise tombstone
// handling. The body lives in internal/bench so that `dvbench -bench-json`
// measures exactly this workload for the perf-trajectory gate. With the
// free list the loop should run at a near-constant handful of live
// allocations regardless of tick count.
func BenchmarkEventEngine(b *testing.B) {
	bench.EventEngine(b)
}
