package ipl

import (
	"math"
	"testing"

	"dvsync/internal/core"
	"dvsync/internal/input"
	"dvsync/internal/simtime"
)

func TestKalmanDegenerate(t *testing.T) {
	if got := (Kalman{}).Predict(nil, 100); got != 0 {
		t.Errorf("empty = %v", got)
	}
	one := []core.InputSample{{At: 5, Value: 42}}
	if got := (Kalman{}).Predict(one, 100); got != 42 {
		t.Errorf("single = %v", got)
	}
}

func TestKalmanTracksLine(t *testing.T) {
	var h []core.InputSample
	for i := 0; i < 24; i++ {
		at := simtime.Time(int64(i) * int64(simtime.FromMillis(8)))
		h = append(h, core.InputSample{At: at, Value: 100 + 900*at.Seconds()})
	}
	target := simtime.Time(simtime.FromMillis(250))
	want := 100 + 900*target.Seconds()
	got := Kalman{}.Predict(h, target)
	if math.Abs(got-want) > 3 {
		t.Errorf("Kalman on clean line = %v, want %v", got, want)
	}
}

// TestKalmanBeatsLinearUnderNoise: with noisy reports, the filter's
// explicit noise model out-predicts a short-window least-squares fit.
func TestKalmanBeatsLinearUnderNoise(t *testing.T) {
	traj := input.Swipe{Start: 0, Velocity: 1200, Duration: simtime.FromSeconds(1)}
	noise := []float64{2.1, -1.7, 0.4, -2.3, 1.9, -0.6, 2.7, -1.2} // deterministic "sensor" noise
	var h []core.InputSample
	for i := 0; i < 60; i++ {
		at := simtime.Time(int64(i) * int64(simtime.PeriodForHz(120)))
		h = append(h, core.InputSample{At: at, Value: traj.Value(at) + 3*noise[i%len(noise)]})
	}
	now := h[len(h)-1].At
	target := now.Add(simtime.FromMillis(50))
	actual := traj.Value(target)
	errK := math.Abs(Kalman{}.Predict(h, target) - actual)
	errL := math.Abs(Linear{Window: 4}.Predict(h, target) - actual)
	if errK > 15 {
		t.Errorf("Kalman error %v px too large", errK)
	}
	if errK >= errL {
		t.Errorf("Kalman (%v) should beat a short-window linear fit (%v) under noise", errK, errL)
	}
}

func TestKalmanCoincidentTimestamps(t *testing.T) {
	h := []core.InputSample{
		{At: 0, Value: 0}, {At: 0, Value: 1}, {At: 1000, Value: 2},
	}
	got := Kalman{}.Predict(h, 2000)
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("unstable on coincident timestamps: %v", got)
	}
}

func TestKalmanWindow(t *testing.T) {
	// Garbage history followed by a clean segment: a small window ignores
	// the garbage.
	var h []core.InputSample
	for i := 0; i < 30; i++ {
		h = append(h, core.InputSample{At: simtime.Time(i * 1000000), Value: 1e5})
	}
	base := simtime.Time(30 * 1000000)
	for i := 0; i < 16; i++ {
		at := base.Add(simtime.Duration(i) * simtime.FromMillis(8))
		h = append(h, core.InputSample{At: at, Value: float64(i)})
	}
	last := h[len(h)-1].At
	got := Kalman{Window: 16}.Predict(h, last.Add(simtime.FromMillis(8)))
	if math.Abs(got-16) > 2 {
		t.Errorf("windowed Kalman = %v, want ≈16", got)
	}
}
