package ipl

import (
	"math"
	"testing"

	"dvsync/internal/core"
	"dvsync/internal/input"
	"dvsync/internal/simtime"
)

func toCore(samples []input.Sample) []core.InputSample {
	out := make([]core.InputSample, len(samples))
	for i, s := range samples {
		out[i] = core.InputSample{At: s.At, Value: s.Value}
	}
	return out
}

func TestLastValue(t *testing.T) {
	h := []core.InputSample{{At: 0, Value: 5}, {At: 10, Value: 9}}
	if got := (LastValue{}).Predict(h, 100); got != 9 {
		t.Errorf("Predict = %v", got)
	}
	if got := (LastValue{}).Predict(nil, 100); got != 0 {
		t.Errorf("empty Predict = %v", got)
	}
}

func TestLinearExactOnLine(t *testing.T) {
	// Samples on v = 100 + 500·t(s); prediction must be exact.
	var h []core.InputSample
	for i := 0; i < 10; i++ {
		at := simtime.Time(int64(i) * int64(simtime.FromMillis(8)))
		h = append(h, core.InputSample{At: at, Value: 100 + 500*at.Seconds()})
	}
	target := simtime.Time(simtime.FromMillis(150))
	want := 100 + 500*target.Seconds()
	got := Linear{}.Predict(h, target)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("Predict = %v, want %v", got, want)
	}
}

func TestLinearDegenerateHistories(t *testing.T) {
	if got := (Linear{}).Predict(nil, 0); got != 0 {
		t.Errorf("empty = %v", got)
	}
	one := []core.InputSample{{At: 5, Value: 42}}
	if got := (Linear{}).Predict(one, 100); got != 42 {
		t.Errorf("single sample = %v", got)
	}
	same := []core.InputSample{{At: 5, Value: 42}, {At: 5, Value: 44}}
	if got := (Linear{}).Predict(same, 100); got != 44 {
		t.Errorf("coincident timestamps = %v", got)
	}
}

func TestLinearBeatsLastValueOnSwipe(t *testing.T) {
	// The whole point of IPL: during a steady swipe, linear extrapolation
	// to the display time beats holding the last sample (§4.6).
	traj := input.Swipe{Start: 0, Velocity: 1500, Duration: simtime.FromMillis(500)}
	samples := toCore(input.Digitizer{RateHz: 120}.Samples(traj))
	now := simtime.Time(simtime.FromMillis(300))
	target := now.Add(simtime.FromMillis(50)) // display ~3 periods ahead
	hist := history(samples, now)
	actual := traj.Value(target)
	errLin := math.Abs(Linear{}.Predict(hist, target) - actual)
	errLast := math.Abs(LastValue{}.Predict(hist, target) - actual)
	if errLin > 1 {
		t.Errorf("linear error %v px on a linear swipe", errLin)
	}
	if errLast < 50 {
		t.Errorf("last-value error %v px suspiciously small", errLast)
	}
}

func history(samples []core.InputSample, t simtime.Time) []core.InputSample {
	hi := len(samples)
	for hi > 0 && samples[hi-1].At.After(t) {
		hi--
	}
	return samples[:hi]
}

func TestLinearWindowLimitsHistory(t *testing.T) {
	// Old garbage followed by a clean recent line: a small window must
	// ignore the garbage.
	var h []core.InputSample
	for i := 0; i < 20; i++ {
		h = append(h, core.InputSample{At: simtime.Time(i * 1000), Value: 1e6})
	}
	for i := 0; i < 8; i++ {
		at := simtime.Time(100000 + i*1000)
		h = append(h, core.InputSample{At: at, Value: float64(i)})
	}
	got := Linear{Window: 8}.Predict(h, simtime.Time(100000+8*1000))
	if math.Abs(got-8) > 1e-6 {
		t.Errorf("windowed predict = %v, want 8", got)
	}
}

func TestQuadraticExactOnParabola(t *testing.T) {
	// v = 10 + 3·t + 0.5·t² (t in seconds).
	var h []core.InputSample
	for i := 0; i < 12; i++ {
		at := simtime.Time(int64(i) * int64(simtime.FromMillis(10)))
		x := at.Seconds()
		h = append(h, core.InputSample{At: at, Value: 10 + 3*x + 0.5*x*x})
	}
	target := simtime.Time(simtime.FromMillis(200))
	x := target.Seconds()
	want := 10 + 3*x + 0.5*x*x
	got := Quadratic{}.Predict(h, target)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("Predict = %v, want %v", got, want)
	}
}

func TestQuadraticFallsBackOnShortHistory(t *testing.T) {
	h := []core.InputSample{{At: 0, Value: 1}, {At: 1000, Value: 2}}
	got := Quadratic{}.Predict(h, 2000)
	if math.IsNaN(got) {
		t.Error("NaN from short history")
	}
}

func TestZDPOnPinchGesture(t *testing.T) {
	// The §6.5 scenario: linear fitting tracks a zooming distance with
	// tremor to within a few pixels across the D-Timestamp horizon.
	traj := input.Pinch{StartDistance: 200, RatePxPerSec: 350,
		TremorAmp: 4, TremorHz: 6, Duration: simtime.FromMillis(1200)}
	samples := toCore(input.Digitizer{RateHz: 120}.Samples(traj))
	var worst float64
	for ms := 200.0; ms <= 1000; ms += 40 {
		now := simtime.Time(simtime.FromMillis(ms))
		target := now.Add(simtime.FromMillis(33)) // ≈2 periods at 60 Hz
		pred := Linear{}.Predict(history(samples, now), target)
		err := math.Abs(pred - traj.Value(target))
		if err > worst {
			worst = err
		}
	}
	if worst > 3*traj.TremorAmp {
		t.Errorf("worst ZDP error %.1f px, want within tremor scale", worst)
	}
}
