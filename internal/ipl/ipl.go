// Package ipl implements the Input Prediction Layer extension (§4.6):
// curve-fitting predictors that correct the current status of input events
// to the anticipated status at a frame's expected display time, so
// interactive frames can be pre-rendered.
//
// Predictors implement core.InputPredictor. The package ships the linear
// least-squares fit the paper's map app registers as its Zooming Distance
// Predictor (ZDP, §6.5), plus a quadratic variant and a last-value baseline
// for ablations.
package ipl

import (
	"dvsync/internal/core"
	"dvsync/internal/simtime"
)

// LastValue predicts no motion: the most recent sample persists. This is
// exactly what a decoupled frame would render *without* IPL, so it doubles
// as the ablation baseline.
type LastValue struct{}

// Predict implements core.InputPredictor.
func (LastValue) Predict(history []core.InputSample, _ simtime.Time) float64 {
	if len(history) == 0 {
		return 0
	}
	return history[len(history)-1].Value
}

// Linear fits a least-squares line through the most recent Window samples
// and extrapolates it to the target time — the paper's ZDP ("a linear line
// fitting of current (and historical) data of the distance", §6.5).
type Linear struct {
	// Window is how many trailing samples to fit; 0 defaults to 8.
	Window int
}

// Predict implements core.InputPredictor.
func (l Linear) Predict(history []core.InputSample, at simtime.Time) float64 {
	n := l.Window
	if n <= 0 {
		n = 8
	}
	if len(history) == 0 {
		return 0
	}
	if len(history) < 2 {
		return history[len(history)-1].Value
	}
	if len(history) > n {
		history = history[len(history)-n:]
	}
	// Least squares on (t, v) with t in seconds relative to the last
	// sample for conditioning.
	t0 := history[len(history)-1].At
	var sx, sy, sxx, sxy float64
	for _, s := range history {
		x := s.At.Sub(t0).Seconds()
		sx += x
		sy += s.Value
		sxx += x * x
		sxy += x * s.Value
	}
	fn := float64(len(history))
	den := fn*sxx - sx*sx
	if den == 0 {
		return history[len(history)-1].Value
	}
	slope := (fn*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / fn
	return intercept + slope*at.Sub(t0).Seconds()
}

// Quadratic fits a parabola through the trailing Window samples, capturing
// acceleration (useful for spring-like finger motion).
type Quadratic struct {
	// Window is how many trailing samples to fit; 0 defaults to 12.
	Window int
}

// Predict implements core.InputPredictor.
func (q Quadratic) Predict(history []core.InputSample, at simtime.Time) float64 {
	n := q.Window
	if n <= 0 {
		n = 12
	}
	if len(history) < 3 {
		return Linear{Window: n}.Predict(history, at)
	}
	if len(history) > n {
		history = history[len(history)-n:]
	}
	t0 := history[len(history)-1].At
	// Normal equations for y = a + b·x + c·x².
	var s0, s1, s2, s3, s4, sy, sxy, sx2y float64
	for _, s := range history {
		x := s.At.Sub(t0).Seconds()
		x2 := x * x
		s0++
		s1 += x
		s2 += x2
		s3 += x2 * x
		s4 += x2 * x2
		sy += s.Value
		sxy += x * s.Value
		sx2y += x2 * s.Value
	}
	a, b, c, ok := solve3(
		[3][4]float64{
			{s0, s1, s2, sy},
			{s1, s2, s3, sxy},
			{s2, s3, s4, sx2y},
		})
	if !ok {
		return Linear{Window: n}.Predict(history, at)
	}
	x := at.Sub(t0).Seconds()
	return a + b*x + c*x*x
}

// solve3 solves a 3×3 linear system by Gaussian elimination with partial
// pivoting; ok is false when singular.
func solve3(m [3][4]float64) (a, b, c float64, ok bool) {
	for col := 0; col < 3; col++ {
		pivot := col
		for r := col + 1; r < 3; r++ {
			if abs(m[r][col]) > abs(m[pivot][col]) {
				pivot = r
			}
		}
		if abs(m[pivot][col]) < 1e-12 {
			return 0, 0, 0, false
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for k := col; k < 4; k++ {
				m[r][k] -= f * m[col][k]
			}
		}
	}
	return m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2], true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Compile-time interface checks.
var (
	_ core.InputPredictor = LastValue{}
	_ core.InputPredictor = Linear{}
	_ core.InputPredictor = Quadratic{}
)
