package ipl

import (
	"dvsync/internal/core"
	"dvsync/internal/simtime"
)

// Kalman is a constant-velocity Kalman filter predictor: it tracks
// position and velocity through noisy digitizer reports and extrapolates
// the state to the target time. The paper's related-work discussion (§8)
// notes that speculative predictors à la Outatime can be integrated into
// D-VSync through the IPL — this is the classical filtering variant of
// that idea, more robust to sensor noise than a raw least-squares fit on
// short windows.
//
// Kalman is stateless across calls (it re-filters the supplied history),
// matching the core.InputPredictor contract; the filter itself is O(n) in
// the history length, so callers should window their histories.
type Kalman struct {
	// ProcessNoise is the acceleration spectral density (units/s²);
	// 0 defaults to 5e4 — lively enough to track human gestures.
	ProcessNoise float64
	// MeasurementNoise is the digitizer's position noise std-dev in input
	// units; 0 defaults to 2.
	MeasurementNoise float64
	// Window caps how many trailing samples are filtered; 0 defaults
	// to 16.
	Window int
}

// Predict implements core.InputPredictor.
func (k Kalman) Predict(history []core.InputSample, at simtime.Time) float64 {
	if len(history) == 0 {
		return 0
	}
	if len(history) == 1 {
		return history[0].Value
	}
	q := k.ProcessNoise
	if q <= 0 {
		q = 5e4
	}
	rNoise := k.MeasurementNoise
	if rNoise <= 0 {
		rNoise = 2
	}
	r := rNoise * rNoise
	window := k.Window
	if window <= 0 {
		window = 16
	}
	if len(history) > window {
		history = history[len(history)-window:]
	}

	// State [position, velocity]; covariance P (symmetric 2×2).
	x0, x1 := history[0].Value, 0.0
	p00, p01, p11 := r, 0.0, 1e6 // unknown initial velocity
	prev := history[0].At

	for _, s := range history[1:] {
		dt := s.At.Sub(prev).Seconds()
		prev = s.At
		if dt <= 0 {
			continue
		}
		// Predict: x ← F·x with F = [[1, dt], [0, 1]].
		x0 += x1 * dt
		// P ← F·P·Fᵀ + Q (white-noise acceleration model).
		dt2 := dt * dt
		p00 += 2*dt*p01 + dt2*p11 + q*dt2*dt2/4
		p01 += dt*p11 + q*dt2*dt/2
		p11 += q * dt2

		// Update with measurement z = position.
		innov := s.Value - x0
		sVar := p00 + r
		k0 := p00 / sVar
		k1 := p01 / sVar
		x0 += k0 * innov
		x1 += k1 * innov
		// Joseph-free covariance update (standard form).
		p11 -= k1 * p01
		p01 -= k1 * p00
		p00 -= k0 * p00
	}

	horizon := at.Sub(prev).Seconds()
	return x0 + x1*horizon
}

var _ core.InputPredictor = Kalman{}
