package core

import (
	"fmt"

	"dvsync/internal/simtime"
)

// Stage is the FPE execution stage (Figure 10).
type Stage int

// FPE stages.
const (
	// Accumulation means pre-rendering is running ahead of the display,
	// filling the buffer queue with short frames.
	Accumulation Stage = iota
	// Sync means the pre-render limit is reached and frame execution is
	// paced 1:1 with buffer consumption, like conventional VSync.
	Sync
)

// String names the stage.
func (s Stage) String() string {
	if s == Accumulation {
		return "accumulation"
	}
	return "sync"
}

// FPEConfig tunes the Frame Pre-Executor.
type FPEConfig struct {
	// MaxAhead is the pre-rendering limit: the maximum number of frames
	// rendered (or rendering) beyond the one on screen. The OpenHarmony
	// implementation allows at most 3 back buffers for pre-rendering
	// (§5.1); Figure 11 sweeps the equivalent of 4/5/7-buffer queues.
	MaxAhead int
}

// PipelineView is how the FPE observes the rendering pipeline. The sim
// package adapts the concrete producer and buffer queue to it.
type PipelineView interface {
	// Ahead returns the number of frames rendered or rendering but not yet
	// latched (queued + in-flight).
	Ahead() int
	// CanDequeue reports whether a free buffer is available.
	CanDequeue() bool
	// UIFree reports whether the app UI thread is idle at now.
	UIFree(now simtime.Time) bool
	// HasPendingRequest reports whether the animation/interaction stream
	// has another frame to render.
	HasPendingRequest() bool
	// StartFrame begins executing the next frame at now; it is only called
	// when every constraint holds.
	StartFrame(now simtime.Time)
}

// FPE is the Frame Pre-Executor: it decides, at each trigger opportunity,
// whether the next frame may be pre-executed, and tracks the
// accumulation/sync stage.
type FPE struct {
	cfg  FPEConfig
	view PipelineView

	stage      Stage
	starts     int
	preStarts  int // starts issued while the display had ≥1 frame queued ahead
	syncBlocks int // trigger opportunities blocked by the pre-render limit
}

// NewFPE creates a pre-executor over the given pipeline view.
func NewFPE(cfg FPEConfig, view PipelineView) *FPE {
	if cfg.MaxAhead < 1 {
		panic(fmt.Sprintf("core: pre-render limit %d must be ≥ 1", cfg.MaxAhead))
	}
	if view == nil {
		panic("core: nil pipeline view")
	}
	return &FPE{cfg: cfg, view: view}
}

// Stage returns the current execution stage.
func (f *FPE) Stage() Stage { return f.stage }

// Starts returns the number of frames the FPE has triggered.
func (f *FPE) Starts() int { return f.starts }

// PreStarts returns the number of starts issued while at least one frame
// was already waiting ahead — i.e. genuinely decoupled pre-execution.
func (f *FPE) PreStarts() int { return f.preStarts }

// SyncBlocks returns how many trigger opportunities the pre-render limit
// deferred.
func (f *FPE) SyncBlocks() int { return f.syncBlocks }

// Pump evaluates the trigger conditions at now and starts as many frames as
// the constraints allow (normally zero or one; the loop covers the case of
// several constraints clearing at the same instant). The sim wires Pump to
// every trigger opportunity: a frame's UI stage completing (the request
// from the last frame, §4.3), a buffer slot freeing at a latch, and the
// stream's first request.
func (f *FPE) Pump(now simtime.Time) {
	for f.view.HasPendingRequest() {
		if !f.view.UIFree(now) {
			return
		}
		ahead := f.view.Ahead()
		if ahead >= f.cfg.MaxAhead || !f.view.CanDequeue() {
			// Pre-render limit reached: enter the sync stage; execution
			// resumes when the screen consumes a buffer.
			f.stage = Sync
			f.syncBlocks++
			return
		}
		f.stage = Accumulation
		f.starts++
		if ahead > 0 {
			f.preStarts++
		}
		f.view.StartFrame(now)
	}
}
