package core

import (
	"fmt"

	"dvsync/internal/simtime"
)

// Stage is the FPE execution stage (Figure 10).
type Stage int

// FPE stages.
const (
	// Accumulation means pre-rendering is running ahead of the display,
	// filling the buffer queue with short frames.
	Accumulation Stage = iota
	// Sync means the pre-render limit is reached and frame execution is
	// paced 1:1 with buffer consumption, like conventional VSync.
	Sync
)

// String names the stage.
func (s Stage) String() string {
	if s == Accumulation {
		return "accumulation"
	}
	return "sync"
}

// FPEConfig tunes the Frame Pre-Executor.
type FPEConfig struct {
	// MaxAhead is the pre-rendering limit: the maximum number of frames
	// rendered (or rendering) beyond the one on screen. The OpenHarmony
	// implementation allows at most 3 back buffers for pre-rendering
	// (§5.1); Figure 11 sweeps the equivalent of 4/5/7-buffer queues.
	MaxAhead int
	// OverloadAfter enables accumulation backoff: after this many
	// consecutive frames whose total stage cost exceeds the refresh period,
	// the FPE treats the system as overloaded and caps pre-rendering at one
	// frame ahead until costs recover — accumulating deeper during a
	// sustained overload only adds latency, never throughput. Zero disables
	// backoff (the seed behaviour).
	OverloadAfter int
	// RecoverAfter is how many consecutive under-period frames end the
	// backoff; zero defaults to OverloadAfter.
	RecoverAfter int
}

// PipelineView is how the FPE observes the rendering pipeline. The sim
// package adapts the concrete producer and buffer queue to it.
type PipelineView interface {
	// Ahead returns the number of frames rendered or rendering but not yet
	// latched (queued + in-flight).
	Ahead() int
	// CanDequeue reports whether a free buffer is available.
	CanDequeue() bool
	// UIFree reports whether the app UI thread is idle at now.
	UIFree(now simtime.Time) bool
	// HasPendingRequest reports whether the animation/interaction stream
	// has another frame to render.
	HasPendingRequest() bool
	// StartFrame begins executing the next frame at now; it is only called
	// when every constraint holds. It reports whether the frame actually
	// started — a transient allocation fault may refuse the buffer even
	// though CanDequeue held.
	StartFrame(now simtime.Time) bool
}

// FPE is the Frame Pre-Executor: it decides, at each trigger opportunity,
// whether the next frame may be pre-executed, and tracks the
// accumulation/sync stage.
type FPE struct {
	cfg  FPEConfig
	view PipelineView

	stage      Stage
	starts     int
	preStarts  int // starts issued while the display had ≥1 frame queued ahead
	syncBlocks int // trigger opportunities blocked by the pre-render limit

	overloaded    bool
	overruns      int // consecutive frames costing more than a period
	underruns     int // consecutive frames costing less than a period
	backoffs      int
	recoveries    int
	startFailures int // StartFrame refusals (transient allocation faults)
}

// NewFPE creates a pre-executor over the given pipeline view.
func NewFPE(cfg FPEConfig, view PipelineView) *FPE {
	if cfg.MaxAhead < 1 {
		panic(fmt.Sprintf("core: pre-render limit %d must be ≥ 1", cfg.MaxAhead))
	}
	if view == nil {
		panic("core: nil pipeline view")
	}
	return &FPE{cfg: cfg, view: view}
}

// Reset clears the stage machine, overload detector and counters. The
// pipeline view wired at construction persists.
func (f *FPE) Reset() {
	f.stage = Accumulation
	f.starts = 0
	f.preStarts = 0
	f.syncBlocks = 0
	f.overloaded = false
	f.overruns = 0
	f.underruns = 0
	f.backoffs = 0
	f.recoveries = 0
	f.startFailures = 0
}

// Stage returns the current execution stage.
func (f *FPE) Stage() Stage { return f.stage }

// Starts returns the number of frames the FPE has triggered.
func (f *FPE) Starts() int { return f.starts }

// PreStarts returns the number of starts issued while at least one frame
// was already waiting ahead — i.e. genuinely decoupled pre-execution.
func (f *FPE) PreStarts() int { return f.preStarts }

// SyncBlocks returns how many trigger opportunities the pre-render limit
// deferred.
func (f *FPE) SyncBlocks() int { return f.syncBlocks }

// Overloaded reports whether accumulation backoff is currently active.
func (f *FPE) Overloaded() bool { return f.overloaded }

// Backoffs returns how many times sustained overload triggered backoff.
func (f *FPE) Backoffs() int { return f.backoffs }

// StartFailures returns how many StartFrame calls were refused.
func (f *FPE) StartFailures() int { return f.startFailures }

// ObserveFrameCost feeds one started frame's total stage cost and the
// refresh period it raced against into the overload detector. Backoff
// engages after OverloadAfter consecutive over-period frames and releases
// after RecoverAfter consecutive under-period frames.
func (f *FPE) ObserveFrameCost(total, period simtime.Duration) {
	if f.cfg.OverloadAfter <= 0 {
		return
	}
	rec := f.cfg.RecoverAfter
	if rec <= 0 {
		rec = f.cfg.OverloadAfter
	}
	if total > period {
		f.overruns++
		f.underruns = 0
		if !f.overloaded && f.overruns >= f.cfg.OverloadAfter {
			f.overloaded = true
			f.backoffs++
		}
		return
	}
	f.underruns++
	f.overruns = 0
	if f.overloaded && f.underruns >= rec {
		f.overloaded = false
		f.recoveries++
	}
}

// Pump evaluates the trigger conditions at now and starts as many frames as
// the constraints allow (normally zero or one; the loop covers the case of
// several constraints clearing at the same instant). The sim wires Pump to
// every trigger opportunity: a frame's UI stage completing (the request
// from the last frame, §4.3), a buffer slot freeing at a latch, and the
// stream's first request.
func (f *FPE) Pump(now simtime.Time) {
	limit := f.cfg.MaxAhead
	if f.overloaded && limit > 1 {
		// Backoff: sustained overload means every frame arrives late anyway;
		// accumulating deeper only inflates queue latency.
		limit = 1
	}
	for f.view.HasPendingRequest() {
		if !f.view.UIFree(now) {
			return
		}
		ahead := f.view.Ahead()
		if ahead >= limit || !f.view.CanDequeue() {
			// Pre-render limit reached: enter the sync stage; execution
			// resumes when the screen consumes a buffer.
			f.stage = Sync
			f.syncBlocks++
			return
		}
		f.stage = Accumulation
		if !f.view.StartFrame(now) {
			// Transient allocation fault: retry at the next trigger.
			f.startFailures++
			return
		}
		f.starts++
		if ahead > 0 {
			f.preStarts++
		}
	}
}
