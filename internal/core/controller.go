package core

import (
	"dvsync/internal/simtime"
	"dvsync/internal/workload"
)

// InputPredictor is the Input Prediction Layer interface (§4.6). Apps
// register a predictor for interactive scenarios so that pre-rendered
// frames can anticipate where the input will be at their display time.
//
// Predict receives the input history observed so far and the target
// D-Timestamp, and returns the anticipated input status (a scalar such as a
// coordinate or a pinch distance) at that instant.
type InputPredictor interface {
	Predict(history []InputSample, at simtime.Time) float64
}

// InputSample is one observed input event.
type InputSample struct {
	// At is the event timestamp.
	At simtime.Time
	// Value is the input status (y-coordinate, pinch distance, …).
	Value float64
}

// Controller implements the dual-channel decoupling APIs (§4.5). It decides
// per frame whether the decoupled path applies, and exposes the
// decoupling-aware runtime controls: the pre-rendering limit, retrieval of
// the frame display time, registration of IPL predictors, and the runtime
// switch between D-VSync and VSync.
type Controller struct {
	enabled   bool
	maxAhead  int
	predictor InputPredictor
	dtv       *DTV
}

// NewController creates a controller with D-VSync enabled and the given
// pre-render limit.
func NewController(maxAhead int, dtv *DTV) *Controller {
	return &Controller{enabled: true, maxAhead: maxAhead, dtv: dtv}
}

// Reset re-enables the decoupled channel and restores the given pre-render
// limit (the value NewController received on the fresh path). The IPL
// predictor registered at wiring time persists — registration is part of
// the scenario's configuration, not its per-run state.
func (c *Controller) Reset(maxAhead int) {
	c.enabled = true
	c.maxAhead = maxAhead
}

// SetEnabled is the runtime switch between D-VSync and VSync (API #4 in
// §4.5). Custom-rendering apps turn D-VSync off for scenarios where
// pre-rendering is not applicable (PvP games, camera preview).
func (c *Controller) SetEnabled(on bool) { c.enabled = on }

// Enabled reports the runtime switch state.
func (c *Controller) Enabled() bool { return c.enabled }

// SetPreRenderLimit adjusts the pre-rendering limit, balancing performance
// against memory (API #2 in §4.5).
func (c *Controller) SetPreRenderLimit(n int) {
	if n < 1 {
		n = 1
	}
	c.maxAhead = n
}

// PreRenderLimit returns the current limit.
func (c *Controller) PreRenderLimit() int { return c.maxAhead }

// RegisterPredictor installs an IPL predictor, making the app
// decoupling-aware for interactive frames (API #1 in §4.5). Passing nil
// unregisters.
func (c *Controller) RegisterPredictor(p InputPredictor) { c.predictor = p }

// Predictor returns the registered IPL predictor, if any.
func (c *Controller) Predictor() InputPredictor { return c.predictor }

// FrameDisplayTime exposes the DTV prediction to apps (API #3 in §4.5):
// the display time of a frame triggered now with the given number of frames
// ahead.
func (c *Controller) FrameDisplayTime(now simtime.Time, ahead int) simtime.Time {
	return c.dtv.DTimestamp(now, ahead)
}

// Decoupled decides the channel for a frame of the given class:
//
//   - Deterministic animation frames ride the decoupling-oblivious channel
//     whenever D-VSync is enabled — no app changes needed.
//   - Interactive frames are decoupled only when the app registered an IPL
//     predictor (decoupling-aware channel).
//   - Realtime frames always take the traditional VSync path.
//
// Decoupled is a pure query; callers may invoke it any number of times per
// frame.
func (c *Controller) Decoupled(class workload.Class) bool {
	if !c.enabled {
		return false
	}
	switch class {
	case workload.Deterministic:
		return true
	case workload.Interactive:
		return c.predictor != nil
	default:
		return false
	}
}
