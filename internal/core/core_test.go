package core

import (
	"testing"
	"testing/quick"

	"dvsync/internal/simtime"
	"dvsync/internal/workload"
)

const p60 = 16666666 * simtime.Nanosecond

func feedEdges(d *DTV, n int, period simtime.Duration) simtime.Time {
	var t simtime.Time
	for i := 0; i < n; i++ {
		t = simtime.Time(int64(i) * int64(period))
		d.ObserveEdge(t, uint64(i), period)
	}
	return t
}

func TestDTVNextEdgeAfter(t *testing.T) {
	d := NewDTV(DefaultDTVConfig(), p60)
	last := feedEdges(d, 10, p60)
	if got := d.NextEdgeAfter(last); got != last.Add(p60) {
		t.Errorf("NextEdgeAfter(edge) = %v, want %v", got, last.Add(p60))
	}
	mid := last.Add(p60 / 2)
	if got := d.NextEdgeAfter(mid); got != last.Add(p60) {
		t.Errorf("NextEdgeAfter(mid) = %v, want %v", got, last.Add(p60))
	}
	if got := d.NextEdgeAfter(0); got != last {
		t.Errorf("NextEdgeAfter(past) = %v, want last edge %v", got, last)
	}
}

func TestDTVDTimestamp(t *testing.T) {
	d := NewDTV(DefaultDTVConfig(), p60)
	last := feedEdges(d, 5, p60)
	// ahead=0: latch at next edge, visible one period later.
	if got := d.DTimestamp(last, 0); got != last.Add(2*p60) {
		t.Errorf("DTimestamp(ahead=0) = %v, want %v", got, last.Add(2*p60))
	}
	// ahead=3: three more periods.
	if got := d.DTimestamp(last, 3); got != last.Add(5*p60) {
		t.Errorf("DTimestamp(ahead=3) = %v", got)
	}
	if d.Issued() != 2 {
		t.Errorf("Issued = %d", d.Issued())
	}
}

func TestDTVNegativeAheadPanics(t *testing.T) {
	d := NewDTV(DefaultDTVConfig(), p60)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.DTimestamp(0, -1)
}

func TestDTVPeriodCalibration(t *testing.T) {
	// Panel runs 0.2 % slow; DTV must learn the true period.
	nominal := p60
	truePeriod := simtime.Duration(float64(nominal) * 1.002)
	d := NewDTV(DTVConfig{CalibrateEvery: 4, PeriodSmoothing: 0.5}, p60)
	for i := 0; i < 200; i++ {
		d.ObserveEdge(simtime.Time(int64(i)*int64(truePeriod)), uint64(i), p60)
	}
	got := float64(d.Period())
	want := float64(truePeriod)
	if got < want*0.9995 || got > want*1.0005 {
		t.Errorf("calibrated period %v, want ≈%v", d.Period(), truePeriod)
	}
}

func TestDTVCalibrationOffAccumulatesError(t *testing.T) {
	nominal := p60
	truePeriod := simtime.Duration(float64(nominal) * 1.002)
	calibrated := NewDTV(DTVConfig{CalibrateEvery: 4, PeriodSmoothing: 0.5}, p60)
	frozen := NewDTV(DTVConfig{CalibrateEvery: 1 << 30, PeriodSmoothing: 0.5}, p60)
	var last simtime.Time
	for i := 0; i < 100; i++ {
		last = simtime.Time(int64(i) * int64(truePeriod))
		calibrated.ObserveEdge(last, uint64(i), p60)
		frozen.ObserveEdge(last, uint64(i), p60)
	}
	// DTimestamp(ahead=3) lands 5 true periods out (next edge + 3 queued +
	// 1 photon); the frozen model keeps the nominal period.
	target := last.Add(5 * truePeriod)
	errCal := absDur(calibrated.DTimestamp(last, 3).Sub(target))
	errFro := absDur(frozen.DTimestamp(last, 3).Sub(target))
	if errCal >= errFro {
		t.Errorf("calibration did not help: %v vs %v", errCal, errFro)
	}
}

func absDur(d simtime.Duration) simtime.Duration {
	if d < 0 {
		return -d
	}
	return d
}

func TestDTVRateChangeReset(t *testing.T) {
	d := NewDTV(DefaultDTVConfig(), p60)
	last := feedEdges(d, 20, p60)
	// Panel switches to 120 Hz (LTPO).
	p120 := simtime.PeriodForHz(120)
	t1 := last.Add(p120)
	d.ObserveEdge(t1, 21, p120)
	if got := d.Period(); got != p120 {
		t.Errorf("period after rate change = %v, want %v", got, p120)
	}
	if got := d.DTimestamp(t1, 0); got != t1.Add(2*p120) {
		t.Errorf("DTimestamp after rate change = %v, want %v", got, t1.Add(2*p120))
	}
}

func TestDTVErrorTracking(t *testing.T) {
	d := NewDTV(DefaultDTVConfig(), p60)
	d.RecordPresent(100, 100)
	d.RecordPresent(100, 100+simtime.Time(simtime.FromMillis(2)))
	d.RecordPresent(100, 100-simtime.Time(simtime.FromMillis(4)))
	if got := d.MeanAbsErrorMs(); got != 2 {
		t.Errorf("mean error = %v, want 2", got)
	}
	if got := d.MaxAbsErrorMs(); got != 4 {
		t.Errorf("max error = %v, want 4", got)
	}
}

// DTimestamp must be strictly in the future and monotone in `ahead`.
func TestDTVDTimestampProperties(t *testing.T) {
	d := NewDTV(DefaultDTVConfig(), p60)
	last := feedEdges(d, 8, p60)
	f := func(rawNow uint32, rawAhead uint8) bool {
		now := last.Add(simtime.Duration(rawNow % uint32(p60)))
		ahead := int(rawAhead % 8)
		dts := d.DTimestamp(now, ahead)
		if !dts.After(now) {
			return false
		}
		return d.DTimestamp(now, ahead+1).Sub(dts) == d.Period()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// fakeView is a scriptable PipelineView.
type fakeView struct {
	ahead     int
	free      int
	uiFree    bool
	requests  int
	started   []simtime.Time
	failNext  int // StartFrame refusals to simulate (transient alloc faults)
	startFail int
}

func (v *fakeView) Ahead() int               { return v.ahead }
func (v *fakeView) CanDequeue() bool         { return v.free > 0 }
func (v *fakeView) UIFree(simtime.Time) bool { return v.uiFree }
func (v *fakeView) HasPendingRequest() bool  { return v.requests > 0 }
func (v *fakeView) StartFrame(now simtime.Time) bool {
	if v.failNext > 0 {
		v.failNext--
		v.startFail++
		return false
	}
	v.started = append(v.started, now)
	v.requests--
	v.ahead++
	v.free--
	v.uiFree = false
	return true
}

func TestFPEStartsWhenUnconstrained(t *testing.T) {
	v := &fakeView{ahead: 0, free: 4, uiFree: true, requests: 5}
	f := NewFPE(FPEConfig{MaxAhead: 3}, v)
	f.Pump(10)
	if len(v.started) != 1 {
		t.Fatalf("started %d frames, want 1 (UI becomes busy)", len(v.started))
	}
	if f.Stage() != Accumulation {
		t.Errorf("stage = %v", f.Stage())
	}
	if f.Starts() != 1 || f.PreStarts() != 0 {
		t.Errorf("starts=%d prestarts=%d", f.Starts(), f.PreStarts())
	}
}

func TestFPEBlockedByPreRenderLimit(t *testing.T) {
	v := &fakeView{ahead: 3, free: 4, uiFree: true, requests: 5}
	f := NewFPE(FPEConfig{MaxAhead: 3}, v)
	f.Pump(10)
	if len(v.started) != 0 {
		t.Fatal("must not start beyond the pre-render limit")
	}
	if f.Stage() != Sync {
		t.Errorf("stage = %v, want sync", f.Stage())
	}
	if f.SyncBlocks() != 1 {
		t.Errorf("SyncBlocks = %d", f.SyncBlocks())
	}
	// A slot frees: accumulation resumes.
	v.ahead = 2
	f.Pump(20)
	if len(v.started) != 1 {
		t.Fatal("must start once below the limit")
	}
	if f.Stage() != Accumulation {
		t.Errorf("stage = %v, want accumulation", f.Stage())
	}
	if f.PreStarts() != 1 {
		t.Errorf("PreStarts = %d (ahead was 2)", f.PreStarts())
	}
}

func TestFPEBlockedByBuffers(t *testing.T) {
	v := &fakeView{ahead: 1, free: 0, uiFree: true, requests: 5}
	f := NewFPE(FPEConfig{MaxAhead: 3}, v)
	f.Pump(10)
	if len(v.started) != 0 {
		t.Fatal("must not start without a free buffer")
	}
}

func TestFPEBlockedByUIThread(t *testing.T) {
	v := &fakeView{ahead: 0, free: 3, uiFree: false, requests: 5}
	f := NewFPE(FPEConfig{MaxAhead: 3}, v)
	f.Pump(10)
	if len(v.started) != 0 {
		t.Fatal("must not start while UI thread busy")
	}
	if f.SyncBlocks() != 0 {
		t.Error("UI-busy is not a sync block")
	}
}

func TestFPENoRequests(t *testing.T) {
	v := &fakeView{ahead: 0, free: 3, uiFree: true, requests: 0}
	f := NewFPE(FPEConfig{MaxAhead: 3}, v)
	f.Pump(10)
	if len(v.started) != 0 {
		t.Fatal("must not start without a request")
	}
}

func TestFPEValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for MaxAhead 0")
		}
	}()
	NewFPE(FPEConfig{MaxAhead: 0}, &fakeView{})
}

func TestControllerChannels(t *testing.T) {
	dtv := NewDTV(DefaultDTVConfig(), p60)
	c := NewController(3, dtv)
	if !c.Decoupled(workload.Deterministic) {
		t.Error("deterministic frames should decouple by default")
	}
	if c.Decoupled(workload.Interactive) {
		t.Error("interactive frames need a predictor")
	}
	if c.Decoupled(workload.Realtime) {
		t.Error("realtime frames never decouple")
	}
	c.RegisterPredictor(linear{})
	if !c.Decoupled(workload.Interactive) {
		t.Error("interactive frames should decouple with a predictor")
	}
	c.SetEnabled(false)
	if c.Decoupled(workload.Deterministic) {
		t.Error("runtime switch off must disable decoupling")
	}
	c.SetEnabled(true)
	if !c.Decoupled(workload.Deterministic) {
		t.Error("runtime switch back on")
	}
}

type linear struct{}

func (linear) Predict(h []InputSample, at simtime.Time) float64 { return 0 }

func TestControllerPreRenderLimit(t *testing.T) {
	c := NewController(3, NewDTV(DefaultDTVConfig(), p60))
	if c.PreRenderLimit() != 3 {
		t.Errorf("limit = %d", c.PreRenderLimit())
	}
	c.SetPreRenderLimit(5)
	if c.PreRenderLimit() != 5 {
		t.Errorf("limit = %d", c.PreRenderLimit())
	}
	c.SetPreRenderLimit(0)
	if c.PreRenderLimit() != 1 {
		t.Errorf("limit clamped to %d, want 1", c.PreRenderLimit())
	}
}

func TestControllerFrameDisplayTime(t *testing.T) {
	dtv := NewDTV(DefaultDTVConfig(), p60)
	last := feedEdges(dtv, 5, p60)
	c := NewController(3, dtv)
	if got := c.FrameDisplayTime(last, 2); got != last.Add(4*p60) {
		t.Errorf("FrameDisplayTime = %v", got)
	}
}

func TestStageString(t *testing.T) {
	if Accumulation.String() != "accumulation" || Sync.String() != "sync" {
		t.Error("stage strings wrong")
	}
}

func TestDTVMissedEdgeDiscrimination(t *testing.T) {
	d := NewDTV(DefaultDTVConfig(), p60)
	last := feedEdges(d, 20, p60)
	before := d.Period()
	// The panel skips two refreshes: the next observed edge lands three
	// whole periods out with the nominal period unchanged. The model must
	// keep its learned period instead of resetting it (rate-change reset).
	t1 := last.Add(3 * p60)
	d.ObserveEdge(t1, 21, p60)
	if d.MissedEdges() != 2 {
		t.Fatalf("missed edges = %d, want 2", d.MissedEdges())
	}
	if got := d.Period(); absDur(got-before) > before/100 {
		t.Fatalf("missed edges perturbed the period: %v -> %v", before, got)
	}
	// Phase is locked to the freshest edge as usual.
	if got := d.NextEdgeAfter(t1); got != t1.Add(d.Period()) {
		t.Fatalf("NextEdgeAfter after missed edges = %v, want %v", got, t1.Add(d.Period()))
	}
}

func TestDTVRateChangeIsNotMissedEdge(t *testing.T) {
	d := NewDTV(DefaultDTVConfig(), p60)
	last := feedEdges(d, 20, p60)
	// LTPO rate halving to 30 Hz: the gap is exactly two old periods, but
	// the *nominal* period changed too — this must be treated as a rate
	// change (reset to nominal), not as one missed edge.
	p30 := simtime.PeriodForHz(30)
	t1 := last.Add(p30)
	d.ObserveEdge(t1, 21, p30)
	if d.MissedEdges() != 0 {
		t.Fatalf("rate change misclassified as %d missed edges", d.MissedEdges())
	}
	if got := d.Period(); got != p30 {
		t.Fatalf("period after rate change = %v, want %v", got, p30)
	}
}

func TestDTVReAnchorOnErrorBound(t *testing.T) {
	cfg := DefaultDTVConfig()
	cfg.MaxAbsErrMs = 5
	d := NewDTV(cfg, p60)
	last := feedEdges(d, 10, p60)
	d.RecordPresent(last, last.Add(simtime.Duration(simtime.FromMillis(2))))
	if d.ReAnchors() != 0 {
		t.Fatalf("re-anchored below the bound (%d)", d.ReAnchors())
	}
	d.RecordPresent(last, last.Add(simtime.Duration(simtime.FromMillis(12))))
	if d.ReAnchors() != 1 {
		t.Fatalf("re-anchors = %d, want 1", d.ReAnchors())
	}
	// The re-anchored phase reference is the freshest edge: predictions
	// stay on the observed grid.
	if got := d.NextEdgeAfter(last); got != last.Add(d.Period()) {
		t.Fatalf("NextEdgeAfter after re-anchor = %v, want %v", got, last.Add(d.Period()))
	}
}

func TestDTVReAnchorDisabledByDefault(t *testing.T) {
	d := NewDTV(DefaultDTVConfig(), p60)
	last := feedEdges(d, 10, p60)
	d.RecordPresent(last, last.Add(simtime.Duration(simtime.FromMillis(50))))
	if d.ReAnchors() != 0 {
		t.Fatalf("zero bound must disable re-anchoring, got %d", d.ReAnchors())
	}
}

func TestFPEBackoffHysteresis(t *testing.T) {
	v := &fakeView{ahead: 0, free: 8, uiFree: true, requests: 100}
	f := NewFPE(FPEConfig{MaxAhead: 3, OverloadAfter: 3, RecoverAfter: 2}, v)
	heavy := 2 * p60
	light := p60 / 2
	// Two overruns: not yet overloaded.
	f.ObserveFrameCost(heavy, p60)
	f.ObserveFrameCost(heavy, p60)
	if f.Overloaded() {
		t.Fatal("backed off before OverloadAfter consecutive overruns")
	}
	// An underrun resets the streak.
	f.ObserveFrameCost(light, p60)
	f.ObserveFrameCost(heavy, p60)
	f.ObserveFrameCost(heavy, p60)
	if f.Overloaded() {
		t.Fatal("underrun did not reset the overload streak")
	}
	f.ObserveFrameCost(heavy, p60)
	if !f.Overloaded() || f.Backoffs() != 1 {
		t.Fatalf("overloaded=%v backoffs=%d, want true/1", f.Overloaded(), f.Backoffs())
	}
	// While overloaded the effective pre-render limit is 1.
	v.ahead = 1
	f.Pump(10)
	if len(v.started) != 0 {
		t.Fatal("accumulated beyond 1 ahead while overloaded")
	}
	if f.Stage() != Sync {
		t.Fatalf("stage = %v, want sync under backoff", f.Stage())
	}
	// Recovery needs RecoverAfter consecutive underruns.
	f.ObserveFrameCost(light, p60)
	if !f.Overloaded() {
		t.Fatal("recovered after a single underrun")
	}
	f.ObserveFrameCost(light, p60)
	if f.Overloaded() {
		t.Fatal("did not recover after RecoverAfter underruns")
	}
	f.Pump(20)
	if len(v.started) != 1 {
		t.Fatalf("started %d frames after recovery, want 1", len(v.started))
	}
}

func TestFPEBackoffDisabledByDefault(t *testing.T) {
	f := NewFPE(FPEConfig{MaxAhead: 3}, &fakeView{})
	for i := 0; i < 100; i++ {
		f.ObserveFrameCost(10*p60, p60)
	}
	if f.Overloaded() || f.Backoffs() != 0 {
		t.Fatal("backoff engaged with OverloadAfter unset")
	}
}

func TestFPEStartFailureRetries(t *testing.T) {
	v := &fakeView{ahead: 0, free: 4, uiFree: true, requests: 5, failNext: 1}
	f := NewFPE(FPEConfig{MaxAhead: 3}, v)
	f.Pump(10)
	if len(v.started) != 0 || f.Starts() != 0 {
		t.Fatalf("started %d frames through a refused StartFrame", len(v.started))
	}
	if f.StartFailures() != 1 {
		t.Fatalf("start failures = %d, want 1", f.StartFailures())
	}
	// Next trigger retries the same request and succeeds.
	f.Pump(20)
	if len(v.started) != 1 || f.Starts() != 1 {
		t.Fatalf("retry did not start the frame (started=%d)", len(v.started))
	}
}
