package core

import (
	"fmt"

	"dvsync/internal/metrics"
	"dvsync/internal/simtime"
)

// Checkpoint surface for the D-VSync decision components. All three are
// plain accumulators — no scheduled events, no RNG — so their state is the
// struct fields verbatim.

// DTVState is the Display Time Virtualizer's serialisable state.
type DTVState struct {
	PeriodEst   simtime.Duration     `json:"period_est"`
	Anchor      simtime.Time         `json:"anchor"`
	LastEdge    simtime.Time         `json:"last_edge"`
	HaveAnchor  bool                 `json:"have_anchor"`
	SinceCalib  int                  `json:"since_calib"`
	Issued      int                  `json:"issued"`
	ErrAbs      metrics.WelfordState `json:"err_abs"`
	MissedEdges int                  `json:"missed_edges"`
	ReAnchors   int                  `json:"re_anchors"`
}

// State captures the DTV for a checkpoint.
func (d *DTV) State() DTVState {
	return DTVState{
		PeriodEst:   d.periodEst,
		Anchor:      d.anchor,
		LastEdge:    d.lastEdge,
		HaveAnchor:  d.haveAnchor,
		SinceCalib:  d.sinceCalib,
		Issued:      d.issued,
		ErrAbs:      d.errAbs.State(),
		MissedEdges: d.missedEdges,
		ReAnchors:   d.reAnchors,
	}
}

// Restore loads checkpointed state into a freshly constructed DTV.
func (d *DTV) Restore(st DTVState) error {
	if st.PeriodEst <= 0 {
		return fmt.Errorf("core: restored DTV period %v is not positive", st.PeriodEst)
	}
	if err := d.errAbs.Restore(st.ErrAbs); err != nil {
		return fmt.Errorf("core: DTV error stats: %w", err)
	}
	d.periodEst = st.PeriodEst
	d.anchor, d.lastEdge, d.haveAnchor = st.Anchor, st.LastEdge, st.HaveAnchor
	d.sinceCalib, d.issued = st.SinceCalib, st.Issued
	d.missedEdges, d.reAnchors = st.MissedEdges, st.ReAnchors
	return nil
}

// FPEState is the Frame Pre-Executor's serialisable state.
type FPEState struct {
	Stage         Stage `json:"stage"`
	Starts        int   `json:"starts"`
	PreStarts     int   `json:"pre_starts"`
	SyncBlocks    int   `json:"sync_blocks"`
	Overloaded    bool  `json:"overloaded,omitempty"`
	Overruns      int   `json:"overruns,omitempty"`
	Underruns     int   `json:"underruns,omitempty"`
	Backoffs      int   `json:"backoffs,omitempty"`
	Recoveries    int   `json:"recoveries,omitempty"`
	StartFailures int   `json:"start_failures,omitempty"`
}

// State captures the FPE for a checkpoint.
func (f *FPE) State() FPEState {
	return FPEState{
		Stage:         f.stage,
		Starts:        f.starts,
		PreStarts:     f.preStarts,
		SyncBlocks:    f.syncBlocks,
		Overloaded:    f.overloaded,
		Overruns:      f.overruns,
		Underruns:     f.underruns,
		Backoffs:      f.backoffs,
		Recoveries:    f.recoveries,
		StartFailures: f.startFailures,
	}
}

// Restore loads checkpointed state into a freshly constructed FPE.
func (f *FPE) Restore(st FPEState) error {
	if st.Stage < Accumulation || st.Stage > Sync {
		return fmt.Errorf("core: restored FPE stage %d out of range", int(st.Stage))
	}
	f.stage = st.Stage
	f.starts, f.preStarts, f.syncBlocks = st.Starts, st.PreStarts, st.SyncBlocks
	f.overloaded = st.Overloaded
	f.overruns, f.underruns = st.Overruns, st.Underruns
	f.backoffs, f.recoveries, f.startFailures = st.Backoffs, st.Recoveries, st.StartFailures
	return nil
}

// ControllerState is the runtime controller's serialisable state. The
// registered predictor is configuration (a closure), not state — the resume
// side re-registers it from the reconstructed Config.
type ControllerState struct {
	Enabled  bool `json:"enabled"`
	MaxAhead int  `json:"max_ahead"`
}

// State captures the controller for a checkpoint.
func (c *Controller) State() ControllerState {
	return ControllerState{Enabled: c.enabled, MaxAhead: c.maxAhead}
}

// Restore loads checkpointed state into a freshly constructed controller.
func (c *Controller) Restore(st ControllerState) error {
	if st.MaxAhead < 1 {
		return fmt.Errorf("core: restored pre-render limit %d must be ≥ 1", st.MaxAhead)
	}
	c.enabled = st.Enabled
	c.maxAhead = st.MaxAhead
	return nil
}
