// Package core implements the D-VSync architecture from the paper: the
// Frame Pre-Executor (FPE, §4.3) that paces decoupled pre-rendering, the
// Display Time Virtualizer (DTV, §4.4) that predicts each frame's physical
// display time, and the runtime Controller with the dual-channel decoupling
// APIs (§4.5).
//
// The package contains decision logic only. It observes the rendering
// system through narrow interfaces and is driven by the event-level wiring
// in internal/sim, mirroring how the production implementation hooks into
// the OS render service.
package core

import (
	"fmt"

	"dvsync/internal/metrics"
	"dvsync/internal/simtime"
)

// DTVConfig tunes the Display Time Virtualizer.
type DTVConfig struct {
	// CalibrateEvery is the number of observed hardware edges between
	// re-anchoring the virtual clock ("DTV calibrates the issued
	// D-Timestamp every few frames with hardware VSync signals to avoid
	// error accumulation", §5.1).
	CalibrateEvery int
	// PeriodSmoothing is the EMA coefficient applied to observed edge
	// deltas when estimating the true panel period (0 < s ≤ 1; 1 means
	// use the latest delta only).
	PeriodSmoothing float64
	// RateChangeTolerance is the fractional deviation of an observed edge
	// delta from the current estimate beyond which DTV assumes the panel
	// switched refresh rate (LTPO) and resets its model.
	RateChangeTolerance float64
	// MaxAbsErrMs is the calibration-error bound: when a frame's
	// |present − D-Timestamp| exceeds it, DTV discards its free-running
	// phase and re-anchors on the freshest observed edge. Zero disables
	// re-anchoring (the seed behaviour).
	MaxAbsErrMs float64
}

// DefaultDTVConfig returns the configuration used in the evaluation.
func DefaultDTVConfig() DTVConfig {
	return DTVConfig{
		CalibrateEvery:      4,
		PeriodSmoothing:     0.25,
		RateChangeTolerance: 0.3,
	}
}

// DTV is the Display Time Virtualizer. It maintains a model of the panel's
// VSync timing (period and phase) from observed hardware edges and computes
// the Frame Display Timestamp (D-Timestamp) for frames triggered by the FPE:
// the instant the frame's content will become visible, given the number of
// frames already rendered ahead.
type DTV struct {
	cfg DTVConfig

	periodEst  simtime.Duration // estimated true panel period
	anchor     simtime.Time     // phase reference, re-set at calibration
	lastEdge   simtime.Time     // most recent observed edge
	haveAnchor bool
	sinceCalib int // edges since the last calibration

	issued      int // D-Timestamps handed out
	errAbs      metrics.Welford
	missedEdges int // edges the panel skipped, inferred from whole-period gaps
	reAnchors   int // error-bound re-anchorings
}

// NewDTV creates a virtualizer expecting the given nominal period until the
// first edges are observed.
func NewDTV(cfg DTVConfig, nominalPeriod simtime.Duration) *DTV {
	if cfg.CalibrateEvery <= 0 {
		cfg.CalibrateEvery = DefaultDTVConfig().CalibrateEvery
	}
	if cfg.PeriodSmoothing <= 0 || cfg.PeriodSmoothing > 1 {
		cfg.PeriodSmoothing = DefaultDTVConfig().PeriodSmoothing
	}
	if cfg.RateChangeTolerance <= 0 {
		cfg.RateChangeTolerance = DefaultDTVConfig().RateChangeTolerance
	}
	if nominalPeriod <= 0 {
		panic(fmt.Sprintf("core: invalid nominal period %v", nominalPeriod))
	}
	return &DTV{cfg: cfg, periodEst: nominalPeriod}
}

// ObserveEdge feeds one hardware VSync edge into the timing model. Every
// edge phase-locks the model (an observed edge is ground truth for phase);
// the *period* estimate is recalibrated every CalibrateEvery edges from the
// span they cover, which filters per-edge jitter and tracks oscillator skew
// ("DTV calibrates the issued D-Timestamp every few frames with hardware
// VSync signals to avoid error accumulation", §5.1). The nominal period is
// what the panel is configured to (available to query per §4.4).
func (d *DTV) ObserveEdge(now simtime.Time, seq uint64, nominal simtime.Duration) {
	if d.haveAnchor && now > d.lastEdge {
		delta := now.Sub(d.lastEdge)
		dev := float64(delta-d.periodEst) / float64(d.periodEst)
		if dev < 0 {
			dev = -dev
		}
		if dev > d.cfg.RateChangeTolerance {
			// Distinguish missed refreshes from an LTPO rate change before
			// resetting: a gap of nearly k whole periods (k ≥ 2) while the
			// nominal period is unchanged means the panel skipped k−1 edges
			// and the learned period is still right — keep it, count the
			// implied edges toward calibration, and phase-lock as usual.
			k := int64(float64(delta)/float64(d.periodEst) + 0.5)
			nomDev := float64(nominal-d.periodEst) / float64(d.periodEst)
			if nomDev < 0 {
				nomDev = -nomDev
			}
			gapDev := float64(delta-simtime.Duration(k)*d.periodEst) / float64(d.periodEst)
			if gapDev < 0 {
				gapDev = -gapDev
			}
			if k >= 2 && nomDev <= d.cfg.RateChangeTolerance && gapDev <= d.cfg.RateChangeTolerance {
				d.missedEdges += int(k - 1)
				d.sinceCalib += int(k)
				if d.sinceCalib >= d.cfg.CalibrateEvery {
					measured := simtime.Duration(int64(now.Sub(d.anchor)) / int64(d.sinceCalib))
					s := d.cfg.PeriodSmoothing
					d.periodEst = simtime.Duration((1-s)*float64(d.periodEst) + s*float64(measured))
					d.sinceCalib = 0
					d.anchor = now
				}
				d.lastEdge = now
				return
			}
			// Refresh-rate change (LTPO): reset to the nominal period and
			// restart calibration so D-Timestamps track the new rhythm.
			d.periodEst = nominal
			d.lastEdge = now
			d.anchor = now
			d.sinceCalib = 0
			return
		}
	}
	if !d.haveAnchor {
		d.haveAnchor = true
		d.anchor = now
	} else {
		d.sinceCalib++
		if d.sinceCalib >= d.cfg.CalibrateEvery {
			measured := simtime.Duration(int64(now.Sub(d.anchor)) / int64(d.sinceCalib))
			s := d.cfg.PeriodSmoothing
			d.periodEst = simtime.Duration((1-s)*float64(d.periodEst) + s*float64(measured))
			d.sinceCalib = 0
			d.anchor = now
		}
	}
	d.lastEdge = now
}

// Reset discards the learned timing model and statistics, returning the
// virtualizer to its as-constructed condition with the given nominal period
// (the same value NewDTV received on the fresh path).
func (d *DTV) Reset(nominalPeriod simtime.Duration) {
	if nominalPeriod <= 0 {
		panic(fmt.Sprintf("core: invalid nominal period %v", nominalPeriod))
	}
	d.periodEst = nominalPeriod
	d.anchor = 0
	d.lastEdge = 0
	d.haveAnchor = false
	d.sinceCalib = 0
	d.issued = 0
	d.errAbs = metrics.Welford{}
	d.missedEdges = 0
	d.reAnchors = 0
}

// Period returns the current period estimate.
func (d *DTV) Period() simtime.Duration { return d.periodEst }

// NextEdgeAfter predicts the first panel edge strictly after t. The phase
// reference is the calibration anchor; between calibrations the virtual
// clock free-runs on the period estimate (§5.1). The freshest observed
// edge guards against phantom predictions: an edge was just seen at
// lastEdge, so the next real edge cannot land within half a period of it —
// without this guard, anchor drift plus jitter can mispredict by a whole
// period when queried exactly on an edge.
func (d *DTV) NextEdgeAfter(t simtime.Time) simtime.Time {
	if !d.haveAnchor {
		return simtime.AlignUp(t+1, d.periodEst, 0)
	}
	if t < d.lastEdge {
		return d.lastEdge
	}
	next := simtime.AlignUp(t+1, d.periodEst, d.anchor)
	if min := d.lastEdge.Add(d.periodEst / 2); next < min {
		next = simtime.AlignUp(min, d.periodEst, d.anchor)
	}
	return next
}

// DTimestamp computes the Frame Display Timestamp for a frame triggered at
// now with `ahead` frames already rendered but not yet latched (queued plus
// in-flight). The frame will be latched `ahead` edges after the next edge,
// and becomes visible one scan-out period later (the present fence).
func (d *DTV) DTimestamp(now simtime.Time, ahead int) simtime.Time {
	if ahead < 0 {
		panic(fmt.Sprintf("core: negative ahead count %d", ahead))
	}
	latch := d.NextEdgeAfter(now).Add(simtime.Duration(ahead) * d.periodEst)
	d.issued++
	return latch.Add(d.periodEst)
}

// RecordPresent reports the actual present time of a frame against its
// issued D-Timestamp, feeding the calibration-error statistics ("DTV is
// also elastic to frame drops and skips VSync periods in such cases",
// §5.1 — a skip shows up here as one period of error on that frame).
func (d *DTV) RecordPresent(dTimestamp, present simtime.Time) {
	err := float64(present.Sub(dTimestamp))
	if err < 0 {
		err = -err
	}
	d.errAbs.Add(err)
	if d.cfg.MaxAbsErrMs > 0 && d.haveAnchor &&
		err/float64(simtime.Millisecond) > d.cfg.MaxAbsErrMs {
		// Calibration error over the bound: the free-running phase has
		// drifted (clock skew, missed edges). Re-anchor on the freshest
		// observed edge — ground truth for phase — and restart the
		// calibration span.
		d.anchor = d.lastEdge
		d.sinceCalib = 0
		d.reAnchors++
	}
}

// MissedEdges returns how many skipped panel refreshes the edge model
// inferred from whole-period gaps.
func (d *DTV) MissedEdges() int { return d.missedEdges }

// ReAnchors returns how many times the calibration-error bound forced a
// phase re-anchor.
func (d *DTV) ReAnchors() int { return d.reAnchors }

// Issued returns how many D-Timestamps have been handed out.
func (d *DTV) Issued() int { return d.issued }

// MeanAbsErrorMs returns the mean absolute prediction error in ms.
func (d *DTV) MeanAbsErrorMs() float64 {
	return d.errAbs.Mean() / float64(simtime.Millisecond)
}

// MaxAbsErrorMs returns the maximum absolute prediction error in ms.
func (d *DTV) MaxAbsErrorMs() float64 {
	return d.errAbs.Max() / float64(simtime.Millisecond)
}
