// Package dvsync is a full reproduction of "D-VSync: Decoupled Rendering
// and Displaying for Smartphone Graphics" (Wu et al., ASPLOS 2025) as a Go
// library.
//
// The package is the public facade over the reproduction's building blocks:
//
//   - a deterministic discrete-event simulation of the smartphone rendering
//     stack — panel, hardware/software VSync signals, BufferQueue, and the
//     two-stage UI/render pipeline;
//   - the conventional VSync architecture (Project-Butter style triple
//     buffering) as the baseline;
//   - D-VSync itself: the Frame Pre-Executor (FPE), the Display Time
//     Virtualizer (DTV), the dual-channel decoupling APIs, the Input
//     Prediction Layer (IPL), and the LTPO variable-refresh co-design;
//   - workload models calibrated to the paper's measured baselines, and the
//     experiment harness that regenerates every table and figure of the
//     evaluation.
//
// # Quick start
//
//	profile := dvsync.Profile{
//		Name: "my-app", ShortMeanMs: 6, ShortSigmaMs: 2,
//		LongRatio: 0.05, LongScaleMs: 22, LongAlpha: 2.3,
//		Burstiness: 0.2, UIShare: 0.35,
//	}
//	trace := profile.Generate(1000, 42)
//	baseline := dvsync.Run(dvsync.Config{
//		Mode: dvsync.VSync, Panel: dvsync.Pixel5.Panel(),
//		Buffers: 3, Trace: trace,
//	})
//	decoupled := dvsync.Run(dvsync.Config{
//		Mode: dvsync.DVSync, Panel: dvsync.Pixel5.Panel(),
//		Buffers: 4, Trace: trace,
//	})
//	fmt.Printf("FDPS %.2f → %.2f\n", baseline.FDPS(), decoupled.FDPS())
package dvsync

import (
	"dvsync/internal/anim"
	"dvsync/internal/autotest"
	"dvsync/internal/buffer"
	"dvsync/internal/core"
	"dvsync/internal/display"
	"dvsync/internal/exp"
	"dvsync/internal/fault"
	"dvsync/internal/fleet"
	"dvsync/internal/flight"
	"dvsync/internal/health"
	"dvsync/internal/input"
	"dvsync/internal/ipl"
	"dvsync/internal/ltpo"
	"dvsync/internal/metrics"
	"dvsync/internal/obs"
	"dvsync/internal/scenarios"
	"dvsync/internal/sim"
	"dvsync/internal/simtime"
	"dvsync/internal/telemetry"
	"dvsync/internal/trace"
	"dvsync/internal/workload"
)

// Virtual time.
type (
	// Time is an instant on the simulation clock (ns since t = 0).
	Time = simtime.Time
	// Duration is a span of simulated time in ns.
	Duration = simtime.Duration
)

// Time helpers re-exported from the simulation clock.
var (
	// FromMillis converts milliseconds to a Duration.
	FromMillis = simtime.FromMillis
	// FromSeconds converts seconds to a Duration.
	FromSeconds = simtime.FromSeconds
	// PeriodForHz returns the refresh period of the given rate.
	PeriodForHz = simtime.PeriodForHz
)

// Workload modelling.
type (
	// Profile parameterises a synthetic frame-cost workload (§3's
	// power-law short/long mixture).
	Profile = workload.Profile
	// Trace is a concrete sequence of per-frame costs.
	Trace = workload.Trace
	// Cost is one frame's UI/render-stage demand.
	Cost = workload.Cost
	// Class tags frames with D-VSync applicability (Figure 9).
	Class = workload.Class
)

// Frame classes (§4.2).
const (
	// Deterministic animation frames ride the decoupling-oblivious channel.
	Deterministic = workload.Deterministic
	// Interactive frames decouple through the aware channel with an IPL
	// predictor.
	Interactive = workload.Interactive
	// Realtime frames always take the VSync path.
	Realtime = workload.Realtime
)

// Simulation.
type (
	// Config describes one simulation run.
	Config = sim.Config
	// Result carries everything measured in a run.
	Result = sim.Result
	// Mode selects the rendering architecture.
	Mode = sim.Mode
	// PanelConfig describes the screen model.
	PanelConfig = display.Config
	// Recorder captures a structured event trace of a run.
	Recorder = trace.Recorder
	// Frame is the per-frame record flowing through the pipeline.
	Frame = buffer.Frame
)

// Rendering architectures.
const (
	// VSync is the conventional baseline (Figure 10a).
	VSync = sim.ModeVSync
	// DVSync is the decoupled architecture (Figure 10b).
	DVSync = sim.ModeDVSync
)

// Run executes one simulation to completion. Invalid configurations panic;
// use TryRun when the config comes from external input.
func Run(cfg Config) *Result { return sim.Run(cfg) }

// TryRun executes one simulation, returning configuration errors as values
// instead of panicking. Panics remain only for provable internal invariant
// violations (pipeline ordering, buffer state machine).
func TryRun(cfg Config) (*Result, error) { return sim.TryRun(cfg) }

// ValidateConfig reports what TryRun would reject, without running.
var ValidateConfig = sim.Validate

// NewRecorder returns an empty trace recorder to attach to a Config.
func NewRecorder() *Recorder { return trace.NewRecorder() }

// Flight recording and causal attribution (DESIGN.md §15).
type (
	// TraceSink is the event-sink interface a Config's Recorder field
	// accepts; Recorder and FlightRing both implement it.
	TraceSink = trace.Sink
	// TraceEvent is one structured trace event.
	TraceEvent = trace.Event
	// FlightConfig tunes the flight recorder's ring capacity and trigger
	// thresholds; the zero value selects the documented defaults.
	FlightConfig = flight.Config
	// FlightRing is the fixed-capacity always-on flight recorder: it
	// retains the last events of a run and snapshots them into anomaly
	// dumps when a trigger fires.
	FlightRing = flight.Ring
	// AnomalyDump is one triggered snapshot of the flight ring.
	AnomalyDump = flight.Dump
	// Cause is one link in a cause chain, proximate to root.
	Cause = obs.Cause
	// CauseChain explains one jank / edge-missed / fallback instant.
	CauseChain = obs.CauseChain
)

// Flight-recorder and attribution helpers.
var (
	// NewFlightRecorder returns a flight ring to attach to a Config.
	NewFlightRecorder = flight.New
	// AttributeTrace walks a recorded event stream back to cause chains —
	// the library form of `dvtrace -why`.
	AttributeTrace = obs.Attribute
	// WriteCauseTable renders cause chains as an aligned text table.
	WriteCauseTable = obs.WriteCauseTable
	// WriteEventsJSONL writes events in the schema's JSONL interchange form.
	WriteEventsJSONL = trace.WriteEventsJSONL
	// DumpID names an anomaly dump from the run's config digest, the
	// dump's index and its trigger kind.
	DumpID = flight.DumpID
	// EncodeAnomalyDump / DecodeAnomalyDump seal and verify dumps under a
	// config digest using the checkpoint envelope.
	EncodeAnomalyDump = flight.EncodeDump
	DecodeAnomalyDump = flight.DecodeDump
	// ConfigDigest fingerprints a configuration for checkpoint and
	// anomaly-dump pinning.
	ConfigDigest = sim.ConfigDigest
)

// Runner is a reusable run context: the full simulation graph is wired
// once and rewound per run, so back-to-back runs of one scenario skip
// reconstruction and settle at a near-zero steady-state allocation count.
// A reused run is byte-identical to a fresh Run of the same config. Not
// safe for concurrent use — pool one Runner per worker.
type Runner = sim.Runner

// NewRunner validates the config and wires a reusable run context.
// Invalid configurations panic, exactly like Run.
func NewRunner(cfg Config) *Runner { return sim.NewRunner(cfg) }

// Live telemetry (DESIGN.md §10).
type (
	// TelemetryRegistry is a per-run live metrics registry: counters,
	// gauges and histograms updated from simulation hooks and sampled on
	// virtual-time intervals.
	TelemetryRegistry = telemetry.Registry
	// TelemetrySnapshot is a point-in-time export of a registry —
	// metric values plus the sampled time series.
	TelemetrySnapshot = telemetry.Snapshot
	// TelemetrySample is one sampled time-series row.
	TelemetrySample = telemetry.SampleRow
	// TelemetryRow is one sample row in export form; its JSON encoding
	// renders non-finite values as null instead of failing the marshal.
	TelemetryRow = telemetry.RowSnapshot
)

// NewTelemetryRegistry returns an empty registry to attach to a Config's
// Metrics field. Exports (WritePrometheus, WriteJSON, Snapshot) are
// deterministic per seed and identical at any -workers width.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// Compare runs the same workload under both architectures and returns
// (baseline, decoupled). The baseline uses the classic buffer count; the
// decoupled run uses dvsyncBuffers.
func Compare(tr *Trace, panel PanelConfig, vsyncBuffers, dvsyncBuffers int) (*Result, *Result) {
	v := Run(Config{Mode: VSync, Panel: panel, Buffers: vsyncBuffers, Trace: tr})
	d := Run(Config{Mode: DVSync, Panel: panel, Buffers: dvsyncBuffers, Trace: tr})
	return v, d
}

// D-VSync core abstractions (for decoupling-aware integrations).
type (
	// InputPredictor is the IPL plug-in interface (§4.6).
	InputPredictor = core.InputPredictor
	// InputSample is one observed input event.
	InputSample = core.InputSample
	// DTVConfig tunes the Display Time Virtualizer.
	DTVConfig = core.DTVConfig
)

// IPL predictors (§4.6, §6.5).
type (
	// LinearPredictor is the least-squares line fit (the map app's ZDP).
	LinearPredictor = ipl.Linear
	// QuadraticPredictor captures acceleration.
	QuadraticPredictor = ipl.Quadratic
	// LastValuePredictor is the no-prediction ablation baseline.
	LastValuePredictor = ipl.LastValue
	// KalmanPredictor is a constant-velocity Kalman filter, robust to
	// digitizer noise.
	KalmanPredictor = ipl.Kalman
)

// Input synthesis.
type (
	// Swipe is a constant-velocity drag gesture.
	Swipe = input.Swipe
	// Fling is a drag releasing into friction-decelerated scrolling.
	Fling = input.Fling
	// Pinch is a two-finger zoom gesture with tremor.
	Pinch = input.Pinch
	// Digitizer samples gestures at a touch-controller rate.
	Digitizer = input.Digitizer
)

// Animation sampling.
type (
	// Animation binds a motion curve to a time window and value range.
	Animation = anim.Animation
	// Curve maps normalised time to progress.
	Curve = anim.Curve
	// LinearCurve is constant-velocity motion.
	LinearCurve = anim.Linear
	// EaseInOutCurve is the smoothstep ease.
	EaseInOutCurve = anim.EaseInOut
	// SpringCurve is a damped harmonic oscillator.
	SpringCurve = anim.Spring
	// FlingCurve is friction-decelerated scroll progress.
	FlingCurve = anim.Fling
)

// LTPO variable refresh (§5.3).
type (
	// LTPOPolicy decides refresh rate from content velocity.
	LTPOPolicy = ltpo.Policy
	// RateStep is one velocity-threshold rule.
	RateStep = ltpo.RateStep
)

// NewLTPOPolicy builds a step policy; DefaultLTPOPolicy mirrors §5.3's
// 60/90/120 Hz example.
var (
	NewLTPOPolicy     = ltpo.NewThresholdPolicy
	DefaultLTPOPolicy = ltpo.DefaultUIPolicy
)

// Metrics.
type (
	// Summary is a distribution summary (mean/std/percentiles).
	Summary = metrics.Summary
	// JankReport is the FDPS/FD% report of a run.
	JankReport = metrics.JankReport
	// StutterConfig tunes the perceived-stutter detector (§6.2).
	StutterConfig = metrics.StutterConfig
	// PowerModel converts work accounting into energy/instruction proxies.
	PowerModel = metrics.PowerModel
)

// Metric helpers.
var (
	// CountStutters applies the Table 2 stutter detector.
	CountStutters = metrics.CountStutters
	// DefaultStutterConfig mirrors the industrial UX criteria.
	DefaultStutterConfig = metrics.DefaultStutterConfig
	// DefaultPowerModel returns the §6.7-calibrated coefficients.
	DefaultPowerModel = metrics.DefaultPowerModel
)

// Evaluation catalog (Table 1, Figures 11–14, Table 2, …).
type (
	// Device is one evaluation platform (Table 1).
	Device = scenarios.Device
	// App is one of the 25 Figure 11 applications.
	App = scenarios.App
	// UseCase is one of the 75 Appendix A OS use cases.
	UseCase = scenarios.UseCase
	// Game is one of the 15 Figure 14 games.
	Game = scenarios.Game
	// UXTask is one of the Table 2 composite tasks.
	UXTask = scenarios.UXTask
)

// Catalog accessors.
var (
	// Pixel5, Mate40Pro and Mate60Pro are the Table 1 devices.
	Pixel5    = scenarios.Pixel5
	Mate40Pro = scenarios.Mate40Pro
	Mate60Pro = scenarios.Mate60Pro
	// Devices lists Table 1 in order.
	Devices = scenarios.Devices
	// Apps lists Figure 11's applications.
	Apps = scenarios.Apps
	// UseCases lists Appendix A.
	UseCases = scenarios.UseCases
	// Games lists Figure 14's games.
	Games = scenarios.Games
	// UXTasks lists Table 2's tasks.
	UXTasks = scenarios.UXTasks
)

// Fault injection and graceful degradation (DESIGN.md §7).
type (
	// FaultConfig is a seeded deterministic fault-injection plan.
	FaultConfig = fault.Config
	// FaultEpisode is one bounded fault window with a severity.
	FaultEpisode = fault.Episode
	// FaultCounters tallies every injected fault of a run.
	FaultCounters = fault.Counters
	// HealthConfig tunes the supervised-fallback watchdog thresholds.
	HealthConfig = health.Config
	// HealthReason says which watchdog tripped a fallback.
	HealthReason = health.Reason
	// FallbackRecord is one supervised architecture switch (§4.5).
	FallbackRecord = sim.FallbackRecord
)

// Fault-injection helpers.
var (
	// FaultScenario builds a single-class fault plan from a normalised
	// severity in [0, 1].
	FaultScenario = fault.Scenario
	// FaultClasses lists every injectable fault class.
	FaultClasses = fault.Classes
)

// Appendix A testing framework (internal/autotest).
type (
	// UseCaseScript is a use case compiled to human operations.
	UseCaseScript = autotest.Script
	// UseCaseReport is one case's measured outcome (five-run mean).
	UseCaseReport = autotest.Report
)

// Testing-framework entry points.
var (
	// CompileUseCase derives the operation script of an Appendix A case.
	CompileUseCase = autotest.Compile
	// RunUseCase executes one case under an architecture (five runs).
	RunUseCase = autotest.RunCase
	// RunCensus executes the full 75-case benchmark.
	RunCensus = autotest.RunCensus
)

// Fleet census engine (DESIGN.md §14): batch device-population runs with
// per-cohort telemetry aggregation and content-addressed cell memoisation.
type (
	// FleetSpec declares one census population.
	FleetSpec = fleet.Spec
	// FleetCohort is one population segment of a spec.
	FleetCohort = fleet.Cohort
	// FleetEngine runs censuses and owns the fleet-wide result cache.
	FleetEngine = fleet.Engine
	// FleetResult is one census outcome.
	FleetResult = fleet.Result
	// FleetCohortResult is one cohort's aggregate.
	FleetCohortResult = fleet.CohortResult
)

// Fleet helpers.
var (
	// NewFleetEngine returns an empty census engine.
	NewFleetEngine = fleet.NewEngine
	// FleetDemoSpec is the canonical demo census (dvbench -exp fleet).
	FleetDemoSpec = fleet.DemoSpec
)

// Experiments exposes the harness that regenerates every table and figure;
// each entry writes its reproduction to the supplied writer.
type Experiment = exp.Experiment

// Experiments returns the full experiment registry in presentation order.
func Experiments() []Experiment { return exp.Registry() }

// FindExperiment looks an experiment up by its short ID (e.g. "fig11").
func FindExperiment(id string) (Experiment, bool) { return exp.Find(id) }
