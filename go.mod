module dvsync

go 1.23
