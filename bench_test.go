package dvsync

import (
	"io"
	"strings"
	"testing"

	"dvsync/internal/exp"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (§3 and §6). Each reports the reproduced headline metrics via
// b.ReportMetric, so `go test -bench=. -benchmem` both times the harness
// and prints the paper-vs-measured numbers. EXPERIMENTS.md records the
// comparison in full.

// BenchmarkFig1CDF regenerates Figure 1 (frame rendering time CDF).
func BenchmarkFig1CDF(b *testing.B) {
	var within, beyond float64
	for i := 0; i < b.N; i++ {
		r := exp.Fig1()
		within, beyond = r.WithinOnePeriod, r.BeyondTriple
	}
	b.ReportMetric(100*within, "%within-1-period")
	b.ReportMetric(100*beyond, "%beyond-triple")
}

// BenchmarkFig5Summary regenerates Figure 5 (FD% per device/backend).
func BenchmarkFig5Summary(b *testing.B) {
	var res *exp.Fig5Result
	for i := 0; i < b.N; i++ {
		res = exp.Fig5()
	}
	b.ReportMetric(res.AvgPercent["Google Pixel 5 (AOSP 60Hz, GLES)"], "pixel5-FD%")
	b.ReportMetric(res.AvgPercent["Mate 60 Pro (OH 120Hz, Vulkan)"], "mate60-vk-FD%")
}

// BenchmarkFig6Distribution regenerates Figure 6 (frame distribution).
func BenchmarkFig6Distribution(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		share = exp.Fig6().StuffedShare
	}
	b.ReportMetric(100*share, "%stuffed")
}

// BenchmarkFig7LatencyBall regenerates Figure 7 (touch-follow displacement).
func BenchmarkFig7LatencyBall(b *testing.B) {
	var maxPx float64
	for i := 0; i < b.N; i++ {
		maxPx = exp.Fig7().MaxDisplacementPx
	}
	b.ReportMetric(maxPx, "max-px")
}

// BenchmarkFig9Scope regenerates Figure 9 (applicability scope).
func BenchmarkFig9Scope(b *testing.B) {
	var obliv, aware float64
	for i := 0; i < b.N; i++ {
		r := exp.Fig9()
		obliv, aware = r.DecoupledShareOblivious, r.DecoupledShareAware
	}
	b.ReportMetric(100*obliv, "%decoupled-oblivious")
	b.ReportMetric(100*aware, "%decoupled-aware")
}

// BenchmarkFig10Patterns regenerates Figure 10 (execution patterns).
func BenchmarkFig10Patterns(b *testing.B) {
	var v, d int
	for i := 0; i < b.N; i++ {
		r := exp.Fig10()
		v, d = r.VSyncJanks, r.DVSyncJanks
	}
	b.ReportMetric(float64(v), "vsync-janks")
	b.ReportMetric(float64(d), "dvsync-janks")
}

// BenchmarkFig11Apps regenerates Figure 11 (25 apps, buffer sweep).
func BenchmarkFig11Apps(b *testing.B) {
	var res *exp.FDPSResult
	for i := 0; i < b.N; i++ {
		res = exp.Fig11()
	}
	b.ReportMetric(res.AvgBaseline, "vsync-fdps")
	b.ReportMetric(res.AvgDVSync[4], "dvsync4-fdps")
	b.ReportMetric(res.AvgDVSync[5], "dvsync5-fdps")
	b.ReportMetric(res.AvgDVSync[7], "dvsync7-fdps")
}

// BenchmarkFig12Vulkan regenerates Figure 12 (Mate 60 Pro, Vulkan).
func BenchmarkFig12Vulkan(b *testing.B) {
	benchCaseFigure(b, exp.Fig12, 4)
}

// BenchmarkFig13GLESMate40 regenerates Figure 13 left (Mate 40 Pro).
func BenchmarkFig13GLESMate40(b *testing.B) {
	benchCaseFigure(b, exp.Fig13Mate40, 4)
}

// BenchmarkFig13GLESMate60 regenerates Figure 13 right (Mate 60 Pro).
func BenchmarkFig13GLESMate60(b *testing.B) {
	benchCaseFigure(b, exp.Fig13Mate60, 4)
}

func benchCaseFigure(b *testing.B, run func() *exp.FDPSResult, buffers int) {
	b.Helper()
	var res *exp.FDPSResult
	for i := 0; i < b.N; i++ {
		res = run()
	}
	b.ReportMetric(res.AvgBaseline, "vsync-fdps")
	b.ReportMetric(res.AvgDVSync[buffers], "dvsync-fdps")
	b.ReportMetric(res.Reductions()[buffers], "%reduction")
}

// BenchmarkFig14Games regenerates Figure 14 (15 games).
func BenchmarkFig14Games(b *testing.B) {
	var res *exp.FDPSResult
	for i := 0; i < b.N; i++ {
		res = exp.Fig14()
	}
	b.ReportMetric(res.AvgBaseline, "vsync-fdps")
	b.ReportMetric(res.AvgDVSync[4], "dvsync4-fdps")
	b.ReportMetric(res.AvgDVSync[5], "dvsync5-fdps")
}

// BenchmarkFig15Latency regenerates Figure 15 (rendering latency).
func BenchmarkFig15Latency(b *testing.B) {
	var res *exp.LatencyResult
	for i := 0; i < b.N; i++ {
		res = exp.Fig15()
	}
	for _, dev := range Devices() {
		row := res.Rows[dev.Name]
		label := strings.ReplaceAll(dev.Name, " ", "-")
		b.ReportMetric(row[0], label+"-vsync-ms")
		b.ReportMetric(row[1], label+"-dvsync-ms")
	}
}

// BenchmarkFig16MapApp regenerates Figure 16 (map app case study).
func BenchmarkFig16MapApp(b *testing.B) {
	var res *exp.Fig16Result
	for i := 0; i < b.N; i++ {
		res = exp.Fig16()
	}
	b.ReportMetric(res.BaselineFDPS, "vsync-fdps")
	b.ReportMetric(res.DVSyncFDPS, "dvsync-fdps")
	b.ReportMetric(res.LatencyReductionPct, "%latency-reduction")
	b.ReportMetric(res.ZDPMeanNs, "zdp-ns/frame")
}

// BenchmarkTable2Stutters regenerates Table 2 (UX stutters).
func BenchmarkTable2Stutters(b *testing.B) {
	var res *exp.Table2Result
	for i := 0; i < b.N; i++ {
		res = exp.Table2()
	}
	b.ReportMetric(res.AvgReductionPct, "%stutter-reduction")
}

// BenchmarkDVSyncOverhead regenerates the §6.4 cost accounting.
func BenchmarkDVSyncOverhead(b *testing.B) {
	var res *exp.CostsResult
	for i := 0; i < b.N; i++ {
		res = exp.Costs()
	}
	b.ReportMetric(res.OverheadPerFrameUs, "overhead-us/frame")
	b.ReportMetric(res.AndroidExtraMB, "android-extra-MB")
}

// BenchmarkChromium regenerates the §6.6 case study.
func BenchmarkChromium(b *testing.B) {
	var res *exp.FDPSResult
	for i := 0; i < b.N; i++ {
		res = exp.Chromium()
	}
	b.ReportMetric(res.AvgBaseline, "vsync-fdps")
	b.ReportMetric(res.AvgDVSync[4], "dvsync-fdps")
}

// BenchmarkPowerOverhead regenerates §6.7 (power/instructions).
func BenchmarkPowerOverhead(b *testing.B) {
	var res *exp.PowerResult
	for i := 0; i < b.N; i++ {
		res = exp.Power()
	}
	b.ReportMetric(res.EnergyIncreasePct, "%energy-increase")
	b.ReportMetric(res.EnergyIncreaseZDPPct, "%energy-increase-zdp")
	b.ReportMetric(res.InstrIncreasePct, "%instr-increase")
}

// BenchmarkSimulatorThroughput times the raw simulator: one 1000-frame
// D-VSync run per iteration (the unit of work every experiment multiplies).
func BenchmarkSimulatorThroughput(b *testing.B) {
	profile := Profile{
		Name: "bench", ShortMeanMs: 6.5, ShortSigmaMs: 2.2,
		LongRatio: 0.05, LongScaleMs: 25, LongAlpha: 2.3,
		Burstiness: 0.2, UIShare: 0.35,
	}
	tr := profile.Generate(1000, 1)
	panel := Pixel5.Panel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(Config{Mode: DVSync, Panel: panel, Buffers: 4, Trace: tr})
	}
}

// BenchmarkExperimentsRender times rendering every experiment's tables to a
// discarded writer — the full dvbench run.
func BenchmarkExperimentsRender(b *testing.B) {
	if testing.Short() {
		b.Skip("full harness")
	}
	for i := 0; i < b.N; i++ {
		for _, e := range Experiments() {
			e.Run(io.Discard)
		}
	}
}

// BenchmarkAblationPreRenderLimit sweeps the §4.5 pre-render-limit API.
func BenchmarkAblationPreRenderLimit(b *testing.B) {
	var r *exp.PreRenderLimitResult
	for i := 0; i < b.N; i++ {
		r = exp.AblatePreRenderLimit()
	}
	b.ReportMetric(r.FDPS[1], "fdps-limit1")
	b.ReportMetric(r.FDPS[4], "fdps-limit4")
}

// BenchmarkAblationDTVCalibration quantifies §5.1's calibration claim.
func BenchmarkAblationDTVCalibration(b *testing.B) {
	var r *exp.DTVCalibrationResult
	for i := 0; i < b.N; i++ {
		r = exp.AblateDTVCalibration()
	}
	b.ReportMetric(r.MeanAbsErrMs[4], "err-ms-calibrated")
	b.ReportMetric(r.MeanAbsErrMs[0], "err-ms-freerun")
}

// BenchmarkAblationIPL compares the §4.6 predictors.
func BenchmarkAblationIPL(b *testing.B) {
	var r *exp.IPLPredictorResult
	for i := 0; i < b.N; i++ {
		r = exp.AblateIPLPredictors()
	}
	b.ReportMetric(r.ErrPx["pinch with tremor/last"], "pinch-last-px")
	b.ReportMetric(r.ErrPx["pinch with tremor/linear"], "pinch-zdp-px")
}

// BenchmarkAblationPipelineDepth sweeps the baseline pipeline depth.
func BenchmarkAblationPipelineDepth(b *testing.B) {
	var r *exp.PipelineDepthResult
	for i := 0; i < b.N; i++ {
		r = exp.AblateVSyncPipelineDepth()
	}
	b.ReportMetric(r.FDPS[2], "fdps-depth2")
	b.ReportMetric(r.LatencyMs[2], "latency-ms-depth2")
}

// BenchmarkAblationDTVPacing quantifies the §4.4 pacing guarantee.
func BenchmarkAblationDTVPacing(b *testing.B) {
	var r *exp.PacingResult
	for i := 0; i < b.N; i++ {
		r = exp.AblateDTVPacing()
	}
	b.ReportMetric(r.WithDTV, "pacing-err-dtv")
	b.ReportMetric(r.WithExecTime, "pacing-err-naive")
}

// BenchmarkFutureProjection sweeps D-VSync across 90-165 Hz panels.
func BenchmarkFutureProjection(b *testing.B) {
	var r *exp.FutureResult
	for i := 0; i < b.N; i++ {
		r = exp.Future()
	}
	b.ReportMetric(r.BaselineFDPS[165], "vsync-fdps-165hz")
	b.ReportMetric(r.ReductionPct[165], "%reduction-165hz")
}

// BenchmarkCensus runs the Appendix A 75-case testing framework.
func BenchmarkCensus(b *testing.B) {
	var r *exp.CensusResult
	for i := 0; i < b.N; i++ {
		r = exp.Census()
	}
	b.ReportMetric(float64(r.VSyncCases), "vsync-cases-with-drops")
	b.ReportMetric(float64(r.DVSyncCases), "dvsync-cases-with-drops")
	b.ReportMetric(r.JankReductionPct, "%jank-reduction")
}
